package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// RobustnessRow is one severity step of the fault sweep.
type RobustnessRow struct {
	// Severity scales every fault knob in faults.DefaultPlan: 0 is a
	// clean measurement plane, 1 combines a broken observer (heavy
	// erratic loss plus a two-week downtime), bursty link loss on every
	// site, a skewed clock, and a corrupting collector.
	Severity float64
	// Analyzed and Failed count blocks whose analysis completed or
	// errored; the pipeline must cover every healthy block regardless of
	// severity.
	Analyzed, Failed int
	// Excluded is how many observers the §2.7 health check discarded.
	Excluded int
	// ChangeSensitive is the surviving change-sensitive block count.
	ChangeSensitive int
	// TP/FP/FN score down-change detections near each region's WFH date
	// against ground truth, as in Table 5.
	TP, FP, FN int
	Precision  float64
	Recall     float64
	// Quarantined counts probe records removed by sanitization across all
	// blocks; LowConf counts detections demoted for falling in
	// measurement gaps.
	Quarantined, LowConf int
	// RawTP/RawFP/RawFN and RawPrecision/RawRecall score the same sweep
	// with every mitigation disabled (no sanitization, no gap marking, no
	// observer exclusion) — the degradation the harness would suffer
	// without the graceful-degradation machinery.
	RawTP, RawFP, RawFN     int
	RawPrecision, RawRecall float64
}

// RobustnessResult is the severity sweep of the fault-injection harness.
type RobustnessResult struct {
	Observers int
	Rows      []RobustnessRow
}

// RobustnessSeverities is the sweep grid.
var RobustnessSeverities = []float64{0, 0.25, 0.5, 0.75, 1}

// Robustness sweeps fault severity over one fixed world and reports how
// change-detection accuracy degrades. At each step the probing substrate
// is wrapped in a faults.Engine carrying faults.DefaultPlan at that
// severity, and the pipeline runs with every graceful-degradation
// mechanism enabled: record sanitization, gap-aware trend confidence,
// observer auto-exclusion, and per-block error accumulation. The paper's
// measurement plane survived exactly these pathologies (congested links
// in §3.3, the broken sites c and g in §2.7); this experiment checks the
// reproduction degrades gradually rather than collapsing.
func Robustness(opts Options) (*RobustnessResult, error) {
	start, end := q1Window()
	cal := events.Year2020()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(300),
		Seed:     opts.seed() + 17,
		Calendar: cal,
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)

	rawCfg := cfg
	rawCfg.SanitizeRecords = false
	rawCfg.MaxGapHours = -1

	const observers = 4
	res := &RobustnessResult{Observers: observers}
	for _, sev := range RobustnessSeverities {
		plan := faults.DefaultPlan(observers, sev, start, opts.seed()+23)
		newEngine := func() core.Prober {
			return &faults.Engine{
				Inner: &probe.Engine{Observers: probe.StandardObservers(observers), QuarterSeed: opts.seed()},
				Plan:  plan,
			}
		}
		run, err := (&core.Pipeline{
			Config:          cfg,
			Engine:          newEngine(),
			ExcludeSuspects: true,
			HealthSample:    16,
		}).Run(opts.ctx(), world)
		if err != nil {
			return nil, fmt.Errorf("severity %.2f: %w", sev, err)
		}
		raw, err := (&core.Pipeline{Config: rawCfg, Engine: newEngine()}).Run(opts.ctx(), world)
		if err != nil {
			return nil, fmt.Errorf("severity %.2f (unmitigated): %w", sev, err)
		}
		row := RobustnessRow{
			Severity: sev,
			Analyzed: run.Report.AnalyzedBlocks,
			Failed:   len(run.Report.BlockErrors),
			Excluded: len(run.Report.ExcludedObservers),
		}
		for i := range run.Blocks {
			wb := world[i]
			if a := run.Blocks[i].Analysis; a != nil {
				row.Quarantined += a.Sanitize.Total()
				row.LowConf += len(a.LowConfChanges)
				if a.Class.ChangeSensitive {
					row.ChangeSensitive++
				}
				tp, fp, fn := scoreWFH(wb, a, cal, start, end)
				row.TP += tp
				row.FP += fp
				row.FN += fn
			}
			if a := raw.Blocks[i].Analysis; a != nil {
				tp, fp, fn := scoreWFH(wb, a, cal, start, end)
				row.RawTP += tp
				row.RawFP += fp
				row.RawFN += fn
			}
		}
		row.Precision, row.Recall = prf(row.TP, row.FP, row.FN)
		row.RawPrecision, row.RawRecall = prf(row.RawTP, row.RawFP, row.RawFN)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// scoreWFH scores one change-sensitive block's down-change detections
// against its region's WFH date, Table 5 style: (1,0,0) for a confirmed
// detection, (0,1,0) for a detection without a true change, (0,0,1) for a
// missed true change.
func scoreWFH(wb *dataset.WorldBlock, a *core.BlockAnalysis, cal *events.Calendar, start, end int64) (tp, fp, fn int) {
	if !a.Class.ChangeSensitive {
		return 0, 0, 0
	}
	date, ok := cal.WFHDate(wb.Place.Region.Code)
	if !ok || date < start || date >= end {
		return 0, 0, 0
	}
	near := false
	for _, c := range a.DownChanges() {
		if events.MatchWithin(c.Point, date, events.MatchWindowDays) {
			near = true
			break
		}
	}
	truth := hasVisibleChange(wb.Block, wb.Place.Region.TZOffset, date)
	switch {
	case near && truth:
		return 1, 0, 0
	case near:
		return 0, 1, 0
	case truth:
		return 0, 0, 1
	}
	return 0, 0, 0
}

// prf computes precision and recall, zero when undefined.
func prf(tp, fp, fn int) (precision, recall float64) {
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// String renders the severity→accuracy degradation table.
func (r *RobustnessResult) String() string {
	t := &table{header: []string{
		"severity", "analyzed", "failed", "excluded obs", "CS blocks",
		"precision", "recall", "raw precision", "raw recall", "quarantined", "low-conf",
	}}
	for _, row := range r.Rows {
		t.add(
			fmt.Sprintf("%.2f", row.Severity),
			itoa(row.Analyzed), itoa(row.Failed), itoa(row.Excluded),
			itoa(row.ChangeSensitive),
			fmt.Sprintf("%.0f%%", 100*row.Precision),
			fmt.Sprintf("%.0f%%", 100*row.Recall),
			fmt.Sprintf("%.0f%%", 100*row.RawPrecision),
			fmt.Sprintf("%.0f%%", 100*row.RawRecall),
			itoa(row.Quarantined), itoa(row.LowConf),
		)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — WFH detection accuracy under injected measurement faults (%d observers)\n%s", r.Observers, t)
	b.WriteString("severity 1 breaks one observer outright (downtime + erratic loss), adds bursty loss,\n" +
		"clock skew, and a corrupting collector. \"raw\" columns disable every mitigation\n" +
		"(sanitization, gap marking, observer exclusion): accuracy decays with severity,\n" +
		"while the mitigated pipeline degrades gracefully instead of collapsing.\n")
	return b.String()
}
