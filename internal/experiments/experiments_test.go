package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
)

// skipIfRace skips a world-scale statistical experiment under the race
// detector: these are single-goroutine numeric workloads whose ~10x race
// slowdown blows the package past the test timeout on small machines,
// and the pipeline's real concurrency is race-tested in internal/core.
// TestRobustness and the fast experiment tests still run under -race.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("world-scale experiment skipped under -race")
	}
}

// The experiment tests assert the paper's qualitative shape — who wins, by
// roughly what factor, where peaks fall — at reduced scale. Heavier
// experiments are skipped under -short.

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.blocks(100) != 100 || o.seed() != 1 {
		t.Fatal("zero options should take defaults")
	}
	o = Options{Blocks: 5, Seed: 9}
	if o.blocks(100) != 5 || o.seed() != 9 {
		t.Fatal("explicit options should win")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{header: []string{"a", "bb"}}
	tb.add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") || !strings.Contains(out, "x") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
	if pct(1, 4) != "25.0%" || pct(1, 0) != "n/a" {
		t.Fatal("pct broken")
	}
}

func TestIntersectSemantics(t *testing.T) {
	a := []classification{{responsive: true, diurnal: true, wideSwing: true, sensitive: true}}
	b := []classification{{responsive: true, diurnal: false, wideSwing: true, sensitive: false}}
	got := intersect(a, b)
	if !got[0].responsive || got[0].diurnal || got[0].sensitive {
		t.Fatalf("intersect = %+v", got[0])
	}
}

func TestTable2Shape(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := Table2(Options{Blocks: 150})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	for _, name := range r.Datasets {
		c := r.Counts[name]
		if c.Responsive+c.NotResponsive != c.Routed {
			t.Errorf("%s: responsive split does not sum", name)
		}
		if c.Diurnal+c.NotDiurnal != c.Responsive {
			t.Errorf("%s: diurnal split does not sum", name)
		}
		if c.ChangeSensitive > c.Diurnal || c.ChangeSensitive > c.WideSwing {
			t.Errorf("%s: change-sensitive must be a subset of diurnal and wide swing", name)
		}
		if c.NotResponsive == 0 {
			t.Errorf("%s: firewalled space should leave some blocks unresponsive", name)
		}
	}
	// Duration effect (§3.4): the one-month window finds at least as many
	// change-sensitive blocks as the quarter, which finds at least as
	// many as the half (allowing ±2 for sampling noise at this scale).
	m1 := r.Counts["2020m1-w"].ChangeSensitive
	q1 := r.Counts["2020q1-w"].ChangeSensitive
	h1 := r.Counts["2020h1-w"].ChangeSensitive
	if m1+2 < q1 || q1+2 < h1 {
		t.Errorf("duration ordering violated: m1=%d q1=%d h1=%d", m1, q1, h1)
	}
	// Change-sensitive blocks are a minority of responsive ones.
	if f := r.SensitiveFraction("2020q1-w"); f <= 0 || f > 0.45 {
		t.Errorf("change-sensitive fraction %.2f out of plausible range", f)
	}
}

func TestTable3Shape(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := Table3(Options{Blocks: 120})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.TruthSensitive == 0 {
		t.Fatal("ground truth found no change-sensitive blocks")
	}
	if frac := float64(r.RecoveredByBest) / float64(r.TruthSensitive); frac < 0.5 {
		t.Errorf("matched-window recovery %.0f%% < 50%% (paper: 70%%)", 100*frac)
	}
	// The matched 2-week window should find at least as many CS blocks as
	// the 12-week option (shorter durations detect more, §3.2.1).
	match := r.Counts["2020it89-match-ejnw"].ChangeSensitive
	q1 := r.Counts["2020q1-ejnw"].ChangeSensitive
	if match+2 < q1 {
		t.Errorf("matched window found %d vs q1 %d; want >= (duration effect)", match, q1)
	}
	// Reconstruction overestimates wide swing relative to truth (§3.2.2).
	if r.Counts["2020q1-ejnw"].WideSwing+2 < r.Counts["2020it89-w(truth)"].WideSwing {
		t.Errorf("reconstruction should not undercount wide swing materially")
	}
}

func TestTable4Coherence(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := Table4(Options{Blocks: 700})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	rep := r.Report
	if rep.Observed+rep.UnderObserved != rep.Cells {
		t.Error("observed split does not sum")
	}
	if rep.Represented+rep.UnderRepresented != rep.Observed {
		t.Error("represented split does not sum")
	}
	if rep.CSBlocksRepresented > rep.CSBlocksObserved || rep.RespBlocksRepresented > rep.RespBlocksObserved {
		t.Error("represented sums exceed observed sums")
	}
	// With scale-adjusted thresholds, most observed cells are represented
	// and block-weighted coverage is high (the paper's 60%% / 98.5%%).
	// At 1/170 of the paper's block density, zero-inflation keeps many
	// small cells unrepresented, so the bounds are looser than the
	// paper's 60%/98.5%; EXPERIMENTS.md records larger-scale runs.
	sr := r.ScaledReport
	if sr.RepresentedCellFraction() < 0.3 {
		t.Errorf("scaled represented-cell fraction %.2f < 0.3", sr.RepresentedCellFraction())
	}
	if sr.RespBlockCoverage() < 0.5 {
		t.Errorf("scaled block-weighted coverage %.2f < 0.5", sr.RespBlockCoverage())
	}
	if sr.RespBlockCoverage() < sr.RepresentedCellFraction() {
		t.Errorf("block-weighted coverage %.2f should exceed cell fraction %.2f",
			sr.RespBlockCoverage(), sr.RepresentedCellFraction())
	}
	// Asia carries the most change-sensitive blocks (Figure 7).
	asia := r.ByContinent[0]
	for cont, n := range r.ByContinent {
		if int(cont) != 0 && n > asia {
			t.Errorf("continent %v has %d CS blocks > Asia's %d", cont, n, asia)
		}
	}
}

func TestTable5PrecisionRecall(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	r, err := Table5(Options{Blocks: 400})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Sampled == 0 || r.Sampled > 50 {
		t.Fatalf("sampled %d blocks", r.Sampled)
	}
	if r.WFHInQuarter+r.NoWFHInQuarter != r.Sampled {
		t.Error("sample split does not sum")
	}
	if r.Precision < 0.75 {
		t.Errorf("precision %.0f%% < 75%% (paper: 93%%)", 100*r.Precision)
	}
	if r.RecallWeak < 0.5 {
		t.Errorf("recall %.0f%% < 50%% (paper: 72%%)", 100*r.RecallWeak)
	}
}

func TestLocationValidationShape(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("full-pipeline experiment")
	}
	r, err := LocationValidation(Options{Blocks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if len(r.Locations) != 2 {
		t.Fatal("want UAE and Slovenia")
	}
	truth := map[string]int64{
		"United Arab Emirates": netsim.Date(2020, time.March, 24),
		"Slovenia":             netsim.Date(2020, time.March, 16),
	}
	for _, l := range r.Locations {
		if l.Sampled == 0 {
			t.Errorf("%s: no change-sensitive blocks sampled", l.Name)
			continue
		}
		if l.NearWFH > 0 && l.Precision < 0.75 {
			t.Errorf("%s: precision %.0f%% < 75%%", l.Name, 100*l.Precision)
		}
		if l.PeakDay == "" {
			t.Errorf("%s: no peak day", l.Name)
			continue
		}
		peak, err := time.Parse("2006-01-02", l.PeakDay)
		if err != nil {
			t.Fatal(err)
		}
		diff := peak.Unix() - truth[l.Name]
		if diff < 0 {
			diff = -diff
		}
		if diff > 9*netsim.SecondsPerDay {
			t.Errorf("%s: peak %s more than 9 days from lockdown", l.Name, l.PeakDay)
		}
	}
}

func TestFigure1ExampleBlock(t *testing.T) {
	r, err := Figure1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if !r.Analysis.Class.ChangeSensitive {
		t.Error("example block must be change-sensitive")
	}
	if !r.WFHDetected {
		t.Error("WFH change not detected within ±4 days of 2020-03-15")
	}
	if r.MaxEverActive < 60 || r.MaxEverActive > 110 {
		t.Errorf("|E(b)| = %d, want close to the paper's 88", r.MaxEverActive)
	}
}

func TestFigure2Reconstruction(t *testing.T) {
	r, err := Figure2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.FirstComplete != 1 {
		t.Errorf("estimate should start at round 2 (index 1), got %d", r.FirstComplete)
	}
	for i, round := range r.Rounds {
		if r.Estimates[i] != float64(r.Truth[round]) && round >= 7 {
			t.Errorf("round %d estimate %.0f != truth %d after convergence", round, r.Estimates[i], r.Truth[round])
		}
	}
}

func TestFigure3MoreObserversFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := Figure3(Options{Blocks: 200})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if len(r.FracWithin6h) != 4 {
		t.Fatal("want 4 observer counts")
	}
	if r.FracWithin6h[3] < r.FracWithin6h[0] {
		t.Errorf("4 observers (%.2f) should cover at least as much as 1 (%.2f) at 6h",
			r.FracWithin6h[3], r.FracWithin6h[0])
	}
	if r.FracWithin12h[3] <= r.FracWithin12h[0] {
		t.Errorf("4 observers (%.2f) should beat 1 (%.2f) at 12h",
			r.FracWithin12h[3], r.FracWithin12h[0])
	}
}

func TestFigure4EasyVsHard(t *testing.T) {
	r, err := Figure4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.EasyR < 0.8 {
		t.Errorf("easy block r=%.2f, want >= 0.8 (paper: 0.89)", r.EasyR)
	}
	if r.HardR >= r.EasyR {
		t.Errorf("hard block r=%.2f should be worse than easy %.2f", r.HardR, r.EasyR)
	}
	if r.HardScan <= r.EasyScan {
		t.Error("hard block should scan slower")
	}
}

func TestFigure5FailuresInCorner(t *testing.T) {
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := Figure5(Options{Blocks: 250})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.TotalFailures == 0 {
		t.Fatal("single-observer reconstruction should miss some dense blocks")
	}
	if r.CornerShare < 0.7 {
		t.Errorf("only %.0f%% of failures in the slow/dense corner, want >= 70%%", 100*r.CornerShare)
	}
}

func TestFigure6RepairShape(t *testing.T) {
	r, err := Figure6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	// Observer w (index 0) is depressed and recovers most of the gap.
	cleanAvg := (r.Without[1] + r.Without[2] + r.Without[3]) / 3
	if r.Without[0] >= cleanAvg-0.02 {
		t.Errorf("lossy observer %.3f should sit below clean %.3f", r.Without[0], cleanAvg)
	}
	if r.With[0] <= r.Without[0]+0.02 {
		t.Errorf("repair should raise the lossy observer: %.3f -> %.3f", r.Without[0], r.With[0])
	}
	for i := 1; i <= 3; i++ {
		if d := r.With[i] - r.Without[i]; d > 0.02 || d < -0.001 {
			t.Errorf("repair changed clean observer %s by %.3f", r.Observers[i], d)
		}
	}
	if r.AllWith <= r.AllWithout {
		t.Error("repair should raise the merged reply rate")
	}
}

func TestFigure15VPN(t *testing.T) {
	r, err := Figure15(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if !r.ChangeSensitive || !r.Detected {
		t.Errorf("VPN migration should be detected: %+v", r)
	}
}

func TestFBSModelQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := FBSModel(Options{Blocks: 300})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.SlowBlocks == 0 {
		t.Fatal("no slow blocks in training set")
	}
	if r.Accuracy < 0.9 {
		t.Errorf("accuracy %.2f < 0.9", r.Accuracy)
	}
	if r.FalseNegativeRate > 0.15 {
		t.Errorf("FNR %.2f > 0.15 (paper: 0.5%%)", r.FalseNegativeRate)
	}
}

func TestWorldStudies2020(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("heavy half-year pipeline run")
	}
	opts := Options{Blocks: 700}
	f8, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f8)
	if f8.CSBlocks[0] == 0 { // Asia
		t.Fatal("no change-sensitive blocks in Asia")
	}
	// Asia shows more activity-change signal than Oceania (§4.1).
	asiaTotal, oceaniaTotal := 0.0, 0.0
	for _, v := range f8.Series[0] {
		asiaTotal += v * float64(f8.CSBlocks[0])
	}
	for _, v := range f8.Series[5] {
		oceaniaTotal += v * float64(f8.CSBlocks[5])
	}
	if asiaTotal <= oceaniaTotal {
		t.Errorf("Asia block-weighted changes %.1f should exceed Oceania %.1f", asiaTotal, oceaniaTotal)
	}

	f9, err := Figure9(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f9)
	for _, c := range []*CityStudy{&f9.Wuhan, &f9.Beijing, &f9.Shanghai} {
		if c.CSBlocks == 0 {
			t.Errorf("%s has no change-sensitive blocks", c.Name)
			continue
		}
		if januaryPeak(c, 2020) == 0 {
			t.Errorf("%s shows no January 2020 downturn", c.Name)
		}
	}

	f10, err := Figure10(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f10)
	if f10.Delhi.CSBlocks == 0 {
		t.Fatal("no change-sensitive blocks in New Delhi")
	}
	if f10.RiotsPeak == 0 && f10.CurfewPeak == 0 {
		t.Error("neither Delhi event produced a downturn")
	}
}

func TestWorldStudies2023Controls(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("heavy quarter pipeline run")
	}
	opts := Options{Blocks: 700}
	f12, err := Figure12(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f12)
	if f12.Beijing.CSBlocks > 0 && f12.FestivalPeak == 0 {
		t.Error("2023 Spring Festival should register in Beijing")
	}
	f13, err := Figure13(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f13)
	// The null control may show sampling noise but no event-scale peak
	// beyond what a few blocks' noise can make.
	if f13.Delhi.CSBlocks >= 5 && f13.MaxFraction > 0.5 {
		t.Errorf("2023 Delhi null control has a large peak %.2f", f13.MaxFraction)
	}
}

func TestFigure14ThresholdCurves(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := Figure14(Options{Blocks: 700})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	for i := 1; i < len(r.Represented); i++ {
		if r.Represented[i] > r.Represented[i-1]+1e-9 || r.Observed[i] > r.Observed[i-1]+1e-9 {
			t.Fatal("threshold curves must be non-increasing")
		}
	}
	if r.Observed[0] != 1.0 {
		t.Errorf("threshold 1 observed fraction = %.2f, want 1", r.Observed[0])
	}
}

func TestAblationShapes(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("world-scale ablations")
	}
	stlRes, err := AblationSTLvsNaive(Options{Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", stlRes)
	if stlRes.STLRMSE >= stlRes.NaiveRMSE {
		t.Errorf("STL RMSE %.3f should beat naive %.3f under outliers", stlRes.STLRMSE, stlRes.NaiveRMSE)
	}

	swing, err := AblationSwing(Options{Blocks: 200})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", swing)
	for i := 1; i < len(swing.Sensitive); i++ {
		if swing.Sensitive[i] > swing.Sensitive[i-1] {
			t.Fatal("raising the swing threshold cannot admit more blocks")
		}
	}
	// s=5 keeps the vast majority of diurnal blocks (paper: ~95%).
	for i, s := range swing.Thresholds {
		if s == 5 && swing.DiurnalKept[i] < 0.8 {
			t.Errorf("s=5 keeps only %.0f%% of diurnal blocks", 100*swing.DiurnalKept[i])
		}
	}

	repair, err := AblationLossRepair(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", repair)
	for i, loss := range repair.LossRates {
		if loss >= 0.05 && repair.RateErrWith[i] >= repair.RateErrWithout[i] {
			t.Errorf("repair did not reduce rate error at loss %.0f%%", 100*loss)
		}
	}

	pers, err := AblationPersistence(Options{Blocks: 120})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", pers)
	for i, m := range pers.MinDays {
		if m <= 2 && pers.WeekendOnly[i] == 0 {
			t.Errorf("rule %d-of-7 should admit weekend-only decoys", m)
		}
		if m >= 4 && pers.WeekendOnly[i] > 0 {
			t.Errorf("rule %d-of-7 should reject weekend-only decoys", m)
		}
	}
}

func TestAblationOutageFilter(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("full-pipeline ablation")
	}
	r, err := AblationOutageFilter(Options{Blocks: 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.LeakNone == 0 {
		t.Fatal("unfiltered multi-day outages should produce spurious changes")
	}
	if r.LeakBoth >= r.LeakNone {
		t.Errorf("belief masking removed nothing: %d -> %d", r.LeakNone, r.LeakBoth)
	}
	if r.LeakBoth > r.Blocks/6 {
		t.Errorf("too many outages leak through the full stack: %d of %d", r.LeakBoth, r.Blocks)
	}
	if r.WFHKept < r.WFHBlocks*3/4 {
		t.Errorf("outage filtering destroyed genuine WFH changes: %d of %d kept", r.WFHKept, r.WFHBlocks)
	}
}

func TestFigure11RepresentativeBlocks(t *testing.T) {
	r, err := Figure11(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if !r.CovidDetected {
		t.Error("Figure 11a lockdown not detected")
	}
	if !r.ReassignSuppressed {
		t.Error("Figure 11b reassignment pair not suppressed")
	}
}

func TestExtraProbingRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := ExtraProbing(Options{Blocks: 160})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.TruthSensitive == 0 {
		t.Fatal("no truth change-sensitive blocks")
	}
	if r.ExtraRecovered < r.BaseRecovered {
		t.Errorf("extra probing lost blocks: %d -> %d", r.BaseRecovered, r.ExtraRecovered)
	}
	if r.Selected > 0 && r.MedianScanExtra >= r.MedianScanBase {
		t.Errorf("extra probing did not shorten scans: %.1f -> %.1f h",
			r.MedianScanBase, r.MedianScanExtra)
	}
}

func TestObserverHealthExcludesBrokenSite(t *testing.T) {
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := ObserverHealth(Options{Blocks: 120})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	foundC := false
	for _, s := range r.Suspects {
		if s == "c" {
			foundC = true
		}
		if s == "e" || s == "j" || s == "n" {
			t.Errorf("healthy site %s flagged", s)
		}
	}
	if !foundC {
		t.Error("broken site c not flagged")
	}
	// Excluding the broken site should not hurt, and typically helps,
	// classification fidelity.
	errWith := abs(r.CSWithBroken - r.CSTruth)
	errWithout := abs(r.CSWithoutBroken - r.CSTruth)
	if errWithout > errWith {
		t.Errorf("excluding the broken site hurt: |%d-%d| vs |%d-%d|",
			r.CSWithoutBroken, r.CSTruth, r.CSWithBroken, r.CSTruth)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestProfileSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("world-scale experiment")
	}
	r, err := ProfileSeparation(Options{Blocks: 220})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.WorkplaceBlocks == 0 || r.HomeBlocks == 0 {
		t.Fatal("need both archetypes in the sample")
	}
	if r.WorkplaceAccuracy < 0.8 {
		t.Errorf("workplace accuracy %.0f%% < 80%%", 100*r.WorkplaceAccuracy)
	}
	if r.HomeAccuracy < 0.8 {
		t.Errorf("home accuracy %.0f%% < 80%%", 100*r.HomeAccuracy)
	}
}
