package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// q1Window bounds the 2020q1 analysis window used by the validation
// experiments (12 weeks from Jan 1).
func q1Window() (int64, int64) {
	start := netsim.Date(2020, time.January, 1)
	return start, start + 12*7*netsim.SecondsPerDay
}

// hasVisibleChange consults ground truth: does the block's true activity
// drop materially after the event date? It compares mean true active
// counts at local working hours over the five workdays before and after.
// This plays the role of the paper's manual raw-data examination.
func hasVisibleChange(b *netsim.Block, tz int64, date int64) bool {
	meanNoon := func(from int64, dir int64) float64 {
		sum, n := 0.0, 0
		for d := int64(1); n < 5 && d < 14; d++ {
			day := from + dir*d*netsim.SecondsPerDay
			local := day + tz
			if netsim.IsWeekend(local) {
				continue
			}
			sum += float64(b.CountActive(day + 12*3600 - tz%netsim.SecondsPerDay))
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	meanSwing := func(from int64, dir int64) float64 {
		sum, n := 0.0, 0
		for d := int64(1); n < 7 && d < 10; d++ {
			day := from + dir*d*netsim.SecondsPerDay
			lo, hi := 256, 0
			for h := int64(0); h < 24; h += 3 {
				c := b.CountActive(day + h*3600)
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			sum += float64(hi - lo)
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	before := meanNoon(date, -1)
	after := meanNoon(date, +1)
	if before >= 3 && before-after >= 2 && after < 0.85*before {
		return true
	}
	swingBefore := meanSwing(date, -1)
	swingAfter := meanSwing(date, +1)
	return swingBefore >= 5 && swingAfter < 0.6*swingBefore
}

// Table5Result reproduces Table 5: validation of randomly sampled
// change-sensitive blocks against news-reported WFH dates.
type Table5Result struct {
	ChangeSensitive int
	Sampled         int
	NoWFHInQuarter  int
	WFHInQuarter    int

	CUSUMNearWFH    int // detections within ±4 days
	TruePositives   int // confirmed human-related in ground truth
	FalsePositives  int // detections without a true change (outage etc.)
	NoCUSUMNearWFH  int
	VisualMissed    int // true changes the detector missed (FN)
	CUSUMOtherDates int
	NoCUSUMAnywhere int
	Precision       float64 // paper: 93%
	RecallWeak      float64 // paper: 72%
}

// Table5 runs the full pipeline over a 2020q1 world, samples 50
// change-sensitive blocks, and scores CUSUM detections against the event
// calendar with the ±4-day rule.
func Table5(opts Options) (*Table5Result, error) {
	start, end := q1Window()
	nBlocks := opts.blocks(900)
	cal := events.Year2020()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   nBlocks,
		Seed:     opts.seed() + 11,
		Calendar: cal,
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	pipe := &core.Pipeline{Config: cfg, Engine: eng}
	run, err := pipe.Run(opts.ctx(), world)
	if err != nil {
		return nil, err
	}

	// Deterministic random sample of 50 change-sensitive blocks.
	var csIdx []int
	for i := range run.Blocks {
		if run.Blocks[i].Analysis != nil && run.Blocks[i].Analysis.Class.ChangeSensitive {
			csIdx = append(csIdx, i)
		}
	}
	res := &Table5Result{ChangeSensitive: len(csIdx)}
	sort.Slice(csIdx, func(a, b int) bool {
		return netsim.Hash64(opts.seed(), uint64(csIdx[a])) < netsim.Hash64(opts.seed(), uint64(csIdx[b]))
	})
	if len(csIdx) > 50 {
		csIdx = csIdx[:50]
	}
	res.Sampled = len(csIdx)

	for _, i := range csIdx {
		wb := world[i]
		a := run.Blocks[i].Analysis
		date, ok := cal.WFHDate(wb.Place.Region.Code)
		if !ok || date >= end || date < start {
			res.NoWFHInQuarter++
			continue
		}
		res.WFHInQuarter++
		// The paper confirms each detection by manual examination of the
		// raw data; here ground truth plays that role, checked at the
		// detection's own date.
		var near, nearReal, other bool
		for _, c := range a.DownChanges() {
			if events.MatchWithin(c.Point, date, events.MatchWindowDays) {
				near = true
				if hasVisibleChange(wb.Block, wb.Place.Region.TZOffset, c.Point) {
					nearReal = true
				}
			} else {
				other = true
			}
		}
		truthChanged := hasVisibleChange(wb.Block, wb.Place.Region.TZOffset, date)
		switch {
		case near && (nearReal || truthChanged):
			res.CUSUMNearWFH++
			res.TruePositives++
		case near:
			res.CUSUMNearWFH++
			res.FalsePositives++
		default:
			res.NoCUSUMNearWFH++
			if truthChanged {
				res.VisualMissed++
			}
			if other {
				res.CUSUMOtherDates++
			} else {
				res.NoCUSUMAnywhere++
			}
		}
	}
	if res.CUSUMNearWFH > 0 {
		res.Precision = float64(res.TruePositives) / float64(res.CUSUMNearWFH)
	}
	if res.TruePositives+res.VisualMissed > 0 {
		res.RecallWeak = float64(res.TruePositives) / float64(res.TruePositives+res.VisualMissed)
	}
	return res, nil
}

// String renders the Table 5 cascade.
func (r *Table5Result) String() string {
	t := &table{header: []string{"row", "count"}}
	t.add("change-sensitive blocks", itoa(r.ChangeSensitive))
	t.add("random selection", itoa(r.Sampled))
	t.add("no WFH in quarter", itoa(r.NoWFHInQuarter))
	t.add("WFH in quarter", itoa(r.WFHInQuarter))
	t.add("CUSUM near (±4d) WFH date", itoa(r.CUSUMNearWFH))
	t.add("  confirmed (TP)", itoa(r.TruePositives))
	t.add("  apparent outage/noise (FP)", itoa(r.FalsePositives))
	t.add("no CUSUM near WFH date", itoa(r.NoCUSUMNearWFH))
	t.add("  visual change missed (FN)", itoa(r.VisualMissed))
	t.add("  CUSUM not related to WFH", itoa(r.CUSUMOtherDates))
	t.add("  no CUSUM detections", itoa(r.NoCUSUMAnywhere))
	return fmt.Sprintf("Table 5 — validation of sampled blocks (paper: precision 93%%, recall 72%%)\n%sprecision = %.0f%%, weak recall = %.0f%%\n",
		t, 100*r.Precision, 100*r.RecallWeak)
}

// LocationResult is one gridcell's §3.7-style validation.
type LocationResult struct {
	Name         string
	Cell         geo.CellKey
	CSBlocks     int
	Sampled      int
	NearWFH      int
	Confirmed    int
	VisualMissed int
	Precision    float64
	Recall       float64
	PeakDay      string
	PeakFraction float64
	// PeakRatio compares the peak day's detections to the next-largest
	// day (the paper reports "ten times more than any other day" for the
	// UAE).
	PeakRatio float64
}

// LocationValidationResult covers the two random locations of §3.7.
type LocationValidationResult struct {
	Locations []LocationResult
}

// LocationValidation examines the UAE (24N, 54E) and Slovenia (46N, 14E)
// gridcells: block-level precision/recall and the peak detection day.
func LocationValidation(opts Options) (*LocationValidationResult, error) {
	// The paper examines detections over 2020h1, so the window must
	// extend past the late-March lockdowns.
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.April, 22)
	nBlocks := opts.blocks(2500)
	cal := events.Year2020()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   nBlocks,
		Seed:     opts.seed() + 13,
		Calendar: cal,
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	// Only analyze the two regions' blocks to keep the experiment fast.
	var subset []*dataset.WorldBlock
	for _, wb := range world {
		if wb.Place.Region.Code == "AE" || wb.Place.Region.Code == "SI" {
			subset = append(subset, wb)
		}
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	pipe := &core.Pipeline{Config: cfg, Engine: eng}
	run, err := pipe.Run(opts.ctx(), subset)
	if err != nil {
		return nil, err
	}

	res := &LocationValidationResult{}
	for _, loc := range []struct {
		name, code string
	}{
		{"United Arab Emirates", "AE"},
		{"Slovenia", "SI"},
	} {
		date, _ := cal.WFHDate(loc.code)
		lr := LocationResult{Name: loc.name}
		dayCounts := map[int64]int{}
		for i, wb := range subset {
			if wb.Place.Region.Code != loc.code {
				continue
			}
			a := run.Blocks[i].Analysis
			if a == nil || !a.Class.ChangeSensitive {
				continue
			}
			lr.Cell = wb.Place.Cell
			lr.CSBlocks++
			if lr.Sampled >= 25 {
				continue
			}
			lr.Sampled++
			near := false
			for _, c := range a.DownChanges() {
				dayCounts[netsim.DayIndex(c.Point)]++
				if events.MatchWithin(c.Point, date, events.MatchWindowDays) {
					near = true
				}
			}
			truthChanged := hasVisibleChange(wb.Block, wb.Place.Region.TZOffset, date)
			switch {
			case near && truthChanged:
				lr.NearWFH++
				lr.Confirmed++
			case near:
				lr.NearWFH++
			case truthChanged:
				lr.VisualMissed++
			}
		}
		if lr.NearWFH > 0 {
			lr.Precision = float64(lr.Confirmed) / float64(lr.NearWFH)
		}
		if lr.Confirmed+lr.VisualMissed > 0 {
			lr.Recall = float64(lr.Confirmed) / float64(lr.Confirmed+lr.VisualMissed)
		}
		// Peak of detections over a centered 3-day window: with a
		// 25-block sample individual detections spread over adjacent
		// days, so a short window recovers the aggregate spike the paper
		// sees with hundreds of blocks.
		window := func(d int64) int {
			return dayCounts[d-1] + dayCounts[d] + dayCounts[d+1]
		}
		var peakDay int64
		peak, second := 0, 0
		for d := range dayCounts {
			c := window(d)
			if c > peak || (c == peak && d < peakDay) {
				peak, peakDay = c, d
			}
		}
		for d := range dayCounts {
			if d >= peakDay-3 && d <= peakDay+3 {
				continue // exclude the peak's own neighbourhood
			}
			if c := window(d); c > second {
				second = c
			}
		}
		if peak > 0 && lr.Sampled > 0 {
			lr.PeakDay = time.Unix(peakDay*netsim.SecondsPerDay, 0).UTC().Format("2006-01-02")
			lr.PeakFraction = float64(peak) / float64(lr.Sampled)
			if second == 0 {
				second = 1
			}
			lr.PeakRatio = float64(peak) / float64(second)
		}
		res.Locations = append(res.Locations, lr)
	}
	return res, nil
}

// String renders the per-location validation.
func (r *LocationValidationResult) String() string {
	t := &table{header: []string{"location", "cell", "CS blocks", "sampled", "near WFH", "precision", "recall", "peak day", "peak frac", "peak ratio"}}
	for _, l := range r.Locations {
		t.add(l.Name, l.Cell.String(), itoa(l.CSBlocks), itoa(l.Sampled), itoa(l.NearWFH),
			fmt.Sprintf("%.0f%%", 100*l.Precision), fmt.Sprintf("%.0f%%", 100*l.Recall),
			l.PeakDay, fmt.Sprintf("%.2f", l.PeakFraction), fmt.Sprintf("%.1fx", l.PeakRatio))
	}
	return fmt.Sprintf("§3.7 — validation by location (paper: UAE precision 100%%/recall 73%%; Slovenia 100%%/77%%)\n%s", t)
}
