package experiments

import (
	"fmt"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
	"github.com/diurnalnet/diurnal/internal/stats"
)

// Figure1Result reproduces the paper's running example (128.9.144.0/24): a
// university block with MLK day, Presidents Day, and WFH on 2020-03-15,
// carried through reconstruction, STL, and CUSUM.
type Figure1Result struct {
	Analysis *core.BlockAnalysis
	// MaxEverActive is |E(b)|, the red line of Figure 1a.
	MaxEverActive int
	// WFHDetected reports whether a downward change lands within ±4 days
	// of 2020-03-15, and DetectedPoint is its estimated date.
	WFHDetected   bool
	DetectedPoint string
	NumChanges    int
}

// Figure1 builds and analyzes the example block over 2020q1.
func Figure1(opts Options) (*Figure1Result, error) {
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.March, 25)
	wfh := netsim.Date(2020, time.March, 15)
	b, err := netsim.NewBlock(0x800990, opts.seed()+100, netsim.Spec{
		Workers: 70, AlwaysOn: 8, Firewalled: 10, TZOffset: -8 * 3600,
	})
	if err != nil {
		return nil, err
	}
	mlk := netsim.Date(2020, time.January, 20)
	pres := netsim.Date(2020, time.February, 17)
	b.AddEvent(netsim.Event{Kind: netsim.EventHoliday, Start: mlk, End: mlk + netsim.SecondsPerDay, Adoption: 0.7})
	b.AddEvent(netsim.Event{Kind: netsim.EventHoliday, Start: pres, End: pres + netsim.SecondsPerDay, Adoption: 0.6})
	b.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: wfh, Adoption: 0.9})

	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	a, err := cfg.AnalyzeBlock(eng, b)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{
		Analysis:      a,
		MaxEverActive: len(b.EverActive()),
		NumChanges:    len(a.Changes),
	}
	for _, c := range a.DownChanges() {
		if events.MatchWithin(c.Point, wfh, events.MatchWindowDays) {
			res.WFHDetected = true
			res.DetectedPoint = time.Unix(c.Point, 0).UTC().Format("2006-01-02")
		}
	}
	return res, nil
}

// String summarizes the example block's analysis.
func (r *Figure1Result) String() string {
	return fmt.Sprintf(
		"Figure 1 — example block analysis (paper: |E(b)|=88, change detected 2020-03-15)\n"+
			"  |E(b)| = %d, change-sensitive = %v (diurnal score %.2f, SNR %.0f)\n"+
			"  N changes = %d; WFH detected = %v at %s\n",
		r.MaxEverActive, r.Analysis.Class.ChangeSensitive,
		r.Analysis.Class.DiurnalScore, r.Analysis.Class.SNR,
		r.NumChanges, r.WFHDetected, r.DetectedPoint)
}

// Figure2Result reproduces the reconstruction walk-through of Figure 2: a
// 4-address block scanned incrementally, with the estimate trailing truth.
type Figure2Result struct {
	Rounds    []int64
	Estimates []float64
	Truth     []int
	// FirstComplete is the round index at which the estimate begins.
	FirstComplete int
}

// Figure2 runs the toy reconstruction.
func Figure2(Options) (*Figure2Result, error) {
	rec := func(t int64, addr int, up bool) probe.Record {
		return probe.Record{T: t, Addr: uint8(addr), Up: up}
	}
	// Ten rounds over a 4-address block; two addresses scanned per round,
	// mirroring the paper's staircase of estimates.
	truth := []int{2, 2, 2, 2, 2, 2, 4, 4, 4, 4}
	records := []probe.Record{
		rec(0, 1, false), rec(0, 2, false),
		rec(1, 3, true), rec(1, 4, true),
		rec(2, 1, false), rec(2, 2, false),
		rec(3, 3, true), rec(3, 4, true),
		rec(4, 1, false), rec(4, 2, false),
		rec(5, 3, true), rec(5, 4, true),
		rec(6, 1, true), rec(6, 2, true), // .1 and .2 wake up
		rec(7, 3, true), rec(7, 4, true),
		rec(8, 1, true), rec(8, 2, true),
		rec(9, 3, true), rec(9, 4, true),
	}
	series, err := reconstruct.Reconstruct(records, []int{1, 2, 3, 4})
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Truth: truth, FirstComplete: int(series.Times[0])}
	res.Rounds = series.Times
	res.Estimates = series.Counts
	return res, nil
}

// String renders the estimate-vs-truth staircase.
func (r *Figure2Result) String() string {
	t := &table{header: []string{"round", "estimate", "truth"}}
	for i, round := range r.Rounds {
		t.add(itoa(int(round)+1), fmt.Sprintf("%.0f", r.Estimates[i]), itoa(r.Truth[round]))
	}
	return fmt.Sprintf("Figure 2 — incremental reconstruction of a 4-address block (no estimate until round %d)\n%s",
		r.FirstComplete+1, t)
}

// Figure3Result is the CDF of full-block-scan time for 1–4 observers.
type Figure3Result struct {
	// FracWithin6h and FracWithin12h report, per observer count (index
	// 0 = 1 observer), the fraction of change-sensitive blocks fully
	// scanned within 6 and 12 hours.
	FracWithin6h, FracWithin12h []float64
	Blocks                      int
}

// Figure3 measures scan-time distributions over the diurnal blocks of a
// small world (paper: 65%/48% within 6 h and 78%/61% within 12 h for 4 vs
// 1 observers).
func Figure3(opts Options) (*Figure3Result, error) {
	nBlocks := opts.blocks(300)
	start := netsim.Date(2020, time.January, 6)
	end := start + 4*netsim.SecondsPerDay
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks, Seed: opts.seed() + 19,
		Start: start, End: end, OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	for nObs := 1; nObs <= 4; nObs++ {
		eng := &probe.Engine{Observers: probe.StandardObservers(nObs), QuarterSeed: opts.seed()}
		var medians []float64
		type result struct{ med float64 }
		results := make([]result, len(world))
		parallelEach(len(world), func(i int) {
			results[i].med = -1
			b := world[i].Block
			eb := b.EverActive()
			// Scan-time analysis targets the populated, human-active
			// blocks (the paper measures change-sensitive blocks).
			if len(eb) < 20 {
				return
			}
			perObs, err := eng.Collect(b, start, end)
			if err != nil {
				return
			}
			scans := reconstruct.ScanTimes(reconstruct.Merge(perObs), eb)
			if len(scans) == 0 {
				results[i].med = float64(end - start) // never completed
				return
			}
			vals := make([]float64, len(scans))
			for j, s := range scans {
				vals[j] = float64(s)
			}
			results[i].med = stats.Median(vals)
		})
		for _, r := range results {
			if r.med >= 0 {
				medians = append(medians, r.med)
			}
		}
		cdf := stats.NewCDF(medians)
		res.FracWithin6h = append(res.FracWithin6h, cdf.At(6*3600))
		res.FracWithin12h = append(res.FracWithin12h, cdf.At(12*3600))
		res.Blocks = len(medians)
	}
	return res, nil
}

// String renders the CDF landmarks.
func (r *Figure3Result) String() string {
	t := &table{header: []string{"observers", "<= 6 h", "<= 12 h"}}
	for i := range r.FracWithin6h {
		t.add(itoa(i+1), fmt.Sprintf("%.0f%%", 100*r.FracWithin6h[i]), fmt.Sprintf("%.0f%%", 100*r.FracWithin12h[i]))
	}
	return fmt.Sprintf("Figure 3 — full-block-scan time CDF over %d blocks (paper: 4 obs 65%%@6h/78%%@12h vs 1 obs 48%%/61%%)\n%s",
		r.Blocks, t)
}

// Figure6Result reproduces the congestive-loss case study: per-observer
// reply rates without and with 1-loss repair.
type Figure6Result struct {
	Observers []string
	Without   []float64
	With      []float64
	// AllWithout and AllWith are the merged all-observer rates.
	AllWithout, AllWith float64
}

// Figure6 probes one dense block with four clean observers plus lossy w.
func Figure6(opts Options) (*Figure6Result, error) {
	start := netsim.Date(2023, time.April, 1)
	end := start + 14*netsim.SecondsPerDay
	b, err := netsim.NewBlock(0x76543, opts.seed()+23, netsim.Spec{
		AlwaysOn: 120, Workers: 60, TZOffset: 8 * 3600,
	})
	if err != nil {
		return nil, err
	}
	obs := probe.StandardObservers(5) // w e j n c
	for i := range obs {
		obs[i].Extra = 4
	}
	obs[0].Loss = &probe.LossModel{Base: 0.04, DiurnalAmp: 0.22, TZOffset: 8 * 3600}
	eng := &probe.Engine{Observers: obs, QuarterSeed: opts.seed()}
	perObs, err := eng.Collect(b, start, end)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{}
	for i, o := range obs {
		res.Observers = append(res.Observers, o.Name)
		res.Without = append(res.Without, reconstruct.MeanReplyRate(perObs[i]))
	}
	res.AllWithout = reconstruct.MeanReplyRate(reconstruct.Merge(perObs))
	for i := range perObs {
		reconstruct.Repair1Loss(perObs[i])
	}
	for i := range obs {
		res.With = append(res.With, reconstruct.MeanReplyRate(perObs[i]))
	}
	res.AllWith = reconstruct.MeanReplyRate(reconstruct.Merge(perObs))
	return res, nil
}

// String renders the reply-rate comparison of Figure 6d.
func (r *Figure6Result) String() string {
	t := &table{header: []string{"observer", "w/o 1-loss repair", "w/ 1-loss repair"}}
	for i, name := range r.Observers {
		t.add(name+" only", fmt.Sprintf("%.3f", r.Without[i]), fmt.Sprintf("%.3f", r.With[i]))
	}
	t.add("all obs.", fmt.Sprintf("%.3f", r.AllWithout), fmt.Sprintf("%.3f", r.AllWith))
	return fmt.Sprintf("Figure 6 — congestive loss at observer w and 1-loss repair\n"+
		"(paper: w 0.479→0.552, clean observers ~0.62 barely move, all-obs 0.581→0.622)\n%s", t)
}

// Figure15Result is the VPN-block case study of Appendix B.2.
type Figure15Result struct {
	ChangeSensitive bool
	Detected        bool
	DetectedPoint   string
}

// Figure15 models USC's VPN block: ~150 always-on VPN endpoints plus
// diurnal workers, migrated to new address space at WFH (a permanent
// outage of the old block).
func Figure15(opts Options) (*Figure15Result, error) {
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.March, 25)
	wfh := netsim.Date(2020, time.March, 15)
	b, err := netsim.NewBlock(0x807D34, opts.seed()+29, netsim.Spec{
		Workers: 60, AlwaysOn: 150, TZOffset: -8 * 3600,
	})
	if err != nil {
		return nil, err
	}
	b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: wfh, End: end + netsim.SecondsPerDay})
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	a, err := cfg.AnalyzeBlock(eng, b)
	if err != nil {
		return nil, err
	}
	res := &Figure15Result{ChangeSensitive: a.Class.ChangeSensitive}
	for _, c := range a.DownChanges() {
		if events.MatchWithin(c.Point, wfh, events.MatchWindowDays) {
			res.Detected = true
			res.DetectedPoint = time.Unix(c.Point, 0).UTC().Format("2006-01-02")
		}
	}
	return res, nil
}

// String summarizes the VPN case study.
func (r *Figure15Result) String() string {
	return fmt.Sprintf(
		"Figure 15 — VPN block migration (paper: change detected around 2020-03-15)\n"+
			"  change-sensitive = %v, migration detected = %v at %s\n",
		r.ChangeSensitive, r.Detected, r.DetectedPoint)
}

// Figure11Result reproduces Appendix B.1's two representative blocks: one
// with seven-day diurnal activity that goes quiet at a Covid lockdown, and
// one whose large mid-February drop is an ISP reassignment (a down/up pair
// the pipeline must not report as human activity).
type Figure11Result struct {
	// CovidDetected: the all-week diurnal block's lockdown is found near
	// 2020-03-20 (the UAE block of Figure 11a).
	CovidDetected bool
	CovidPoint    string
	// ReassignSuppressed: the reassignment block's February down/up pair
	// is filtered, while its small late-March trend dip stays below the
	// detection floor (Figure 11b).
	ReassignSuppressed bool
	FilteredChanges    int
}

// Figure11 builds and analyzes both appendix blocks.
func Figure11(opts Options) (*Figure11Result, error) {
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.April, 22)
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	res := &Figure11Result{}

	// (a) Home-public block active every day of the week, locked down on
	// 2020-03-20 (UAE-like; home daytime use rises, evening public IPs
	// persist, but the workplace-style per-address churn collapses).
	lock := netsim.Date(2020, time.March, 20)
	a, err := netsim.NewBlock(0xB101, opts.seed()+61, netsim.Spec{
		Workers: 30, Homes: 30, AlwaysOn: 3, TZOffset: 4 * 3600,
		WeekendWorkProb: 0.6, // activity all seven days, as in Figure 11a
	})
	if err != nil {
		return nil, err
	}
	a.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: lock, Adoption: 0.9})
	ra, err := cfg.AnalyzeBlock(eng, a)
	if err != nil {
		return nil, err
	}
	for _, c := range ra.DownChanges() {
		if events.MatchWithin(c.Point, lock, events.MatchWindowDays) {
			res.CovidDetected = true
			res.CovidPoint = time.Unix(c.Point, 0).UTC().Format("2006-01-02")
		}
	}

	// (b) A block renumbered in mid-February: a large drop and recovery
	// that must be filtered as an ISP-based reassignment.
	b, err := netsim.NewBlock(0xB102, opts.seed()+62, netsim.Spec{
		Workers: 40, Homes: 60, AlwaysOn: 4,
	})
	if err != nil {
		return nil, err
	}
	reassign := netsim.Date(2020, time.February, 14)
	b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: reassign, End: reassign + 2*netsim.SecondsPerDay})
	rb, err := cfg.AnalyzeBlock(eng, b)
	if err != nil {
		return nil, err
	}
	res.ReassignSuppressed = true
	for _, c := range rb.DownChanges() {
		if events.MatchWithin(c.Point, reassign, 3) {
			res.ReassignSuppressed = false
		}
	}
	res.FilteredChanges = len(rb.OutagePairs)
	return res, nil
}

// String summarizes the appendix case studies.
func (r *Figure11Result) String() string {
	return fmt.Sprintf(
		"Figure 11 — two representative change-sensitive blocks (Appendix B.1)\n"+
			"  (a) all-week diurnal block: lockdown detected = %v at %s (paper: 2020-03-20)\n"+
			"  (b) reassignment block: down/up pair suppressed = %v (%d changes filtered)\n",
		r.CovidDetected, r.CovidPoint, r.ReassignSuppressed, r.FilteredChanges)
}
