package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// Paper-named gridcells.
var (
	cellWuhan    = geo.CellOf(30.9, 114.9)
	cellBeijing  = geo.CellOf(39.0, 117.0)
	cellShanghai = geo.CellOf(31.0, 121.0)
	cellDelhi    = geo.CellOf(28.9, 77.0)
)

// worldStudy is a cached full-pipeline run over a calendar window.
type worldStudy struct {
	run              *core.WorldResult
	startDay, endDay int64
}

var studyCache sync.Map // map[string]*worldStudy

// runWorldStudy executes (or returns the cached) pipeline run for a
// labeled window. Figures 8–10 share the 2020h1 study; Figures 12–13 share
// the 2023q1 control, so caching saves each bench from re-simulating.
func runWorldStudy(label string, cal *events.Calendar, start, end, baselineEnd int64, opts Options, defBlocks int) (*worldStudy, error) {
	key := fmt.Sprintf("%s/%d/%d", label, opts.blocks(defBlocks), opts.seed())
	if v, ok := studyCache.Load(key); ok {
		return v.(*worldStudy), nil
	}
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(defBlocks),
		Seed:     opts.seed() + 17,
		Calendar: cal,
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = baselineEnd
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	pipe := &core.Pipeline{Config: cfg, Engine: eng}
	run, err := pipe.Run(opts.ctx(), world)
	if err != nil {
		return nil, err
	}
	st := &worldStudy{
		run:      run,
		startDay: netsim.DayIndex(start),
		endDay:   netsim.DayIndex(end),
	}
	studyCache.Store(key, st)
	return st, nil
}

// study2020h1 runs the first half of 2020 with the Covid calendar.
func study2020h1(opts Options) (*worldStudy, error) {
	return runWorldStudy("2020h1", events.Year2020(),
		netsim.Date(2020, time.January, 1), netsim.Date(2020, time.July, 1),
		netsim.Date(2020, time.January, 29), opts, 800)
}

// study2023q1 runs the 2023 control quarter.
func study2023q1(opts Options) (*worldStudy, error) {
	return runWorldStudy("2023q1", events.Year2023(),
		netsim.Date(2023, time.January, 1), netsim.Date(2023, time.April, 1),
		netsim.Date(2023, time.January, 29), opts, 800)
}

// peakOf returns the day (as a date string) and value of the maximum of a
// daily series starting at startDay.
func peakOf(series []float64, startDay int64) (string, float64) {
	best, idx := 0.0, -1
	for i, v := range series {
		if v > best {
			best, idx = v, i
		}
	}
	if idx < 0 {
		return "none", 0
	}
	return time.Unix((startDay+int64(idx))*netsim.SecondsPerDay, 0).UTC().Format("2006-01-02"), best
}

// Figure8Result holds the per-continent daily downward-change fractions
// over 2020h1.
type Figure8Result struct {
	StartDay int64
	Series   map[geo.Continent][]float64
	CSBlocks map[geo.Continent]int
}

// Figure8 reproduces the continent-level trends of 2020h1.
func Figure8(opts Options) (*Figure8Result, error) {
	st, err := study2020h1(opts)
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{
		StartDay: st.startDay,
		Series:   map[geo.Continent][]float64{},
		CSBlocks: map[geo.Continent]int{},
	}
	for _, c := range geo.Continents() {
		res.Series[c] = st.run.ContinentFractionSeries(c, st.startDay, st.endDay)
		res.CSBlocks[c] = st.run.ContinentCS[c]
	}
	return res, nil
}

// String renders each continent's peak.
func (r *Figure8Result) String() string {
	t := &table{header: []string{"continent", "CS blocks", "peak day", "peak fraction", "total fraction-days"}}
	for _, c := range geo.Continents() {
		day, peak := peakOf(r.Series[c], r.StartDay)
		total := 0.0
		for _, v := range r.Series[c] {
			total += v
		}
		t.add(c.String(), itoa(r.CSBlocks[c]), day, fmt.Sprintf("%.3f", peak), fmt.Sprintf("%.2f", total))
	}
	return fmt.Sprintf("Figure 8 — downward-trending block fractions by continent, 2020h1\n"+
		"(paper: Asia peaks ~2020-01-20 (Spring Festival), most others ~2020-03-20 (Covid), Oceania low)\n%s", t)
}

// CityStudy is one gridcell's daily down/up fractions.
type CityStudy struct {
	Name     string
	Cell     geo.CellKey
	CSBlocks int
	StartDay int64
	Down, Up []float64
}

// Peak returns the date and value of the largest downward fraction.
func (c *CityStudy) Peak() (string, float64) { return peakOf(c.Down, c.StartDay) }

// PeakIn returns the largest downward fraction between two dates
// (inclusive start, exclusive end).
func (c *CityStudy) PeakIn(from, to int64) float64 {
	best := 0.0
	for i, v := range c.Down {
		d := (c.StartDay + int64(i)) * netsim.SecondsPerDay
		if d >= from && d < to && v > best {
			best = v
		}
	}
	return best
}

func (st *worldStudy) city(name string, cell geo.CellKey) CityStudy {
	return CityStudy{
		Name:     name,
		Cell:     cell,
		CSBlocks: st.run.CellCS[cell],
		StartDay: st.startDay,
		Down:     st.run.CellFractionSeries(cell, changepoint.Down, st.startDay, st.endDay),
		Up:       st.run.CellFractionSeries(cell, changepoint.Up, st.startDay, st.endDay),
	}
}

// Figure9Result covers China in January 2020 (§4.2).
type Figure9Result struct {
	Wuhan, Beijing, Shanghai CityStudy
}

// Figure9 studies the concurrent Wuhan lockdown and Spring Festival.
func Figure9(opts Options) (*Figure9Result, error) {
	st, err := study2020h1(opts)
	if err != nil {
		return nil, err
	}
	return &Figure9Result{
		Wuhan:    st.city("Wuhan", cellWuhan),
		Beijing:  st.city("Beijing", cellBeijing),
		Shanghai: st.city("Shanghai", cellShanghai),
	}, nil
}

// JanuaryPeak returns the largest downward fraction in the window around
// the Spring Festival and Wuhan lockdown (Jan 20 – Feb 5) of the study's
// year.
func januaryPeak(c *CityStudy, year int) float64 {
	return c.PeakIn(netsim.Date(year, time.January, 18), netsim.Date(year, time.February, 6))
}

// String renders each city's overall and January peaks.
func (r *Figure9Result) String() string {
	t := &table{header: []string{"city", "cell", "CS blocks", "peak day", "peak fraction", "Jan 20–Feb 5 peak"}}
	for _, c := range []*CityStudy{&r.Wuhan, &r.Beijing, &r.Shanghai} {
		day, peak := c.Peak()
		t.add(c.Name, c.Cell.String(), itoa(c.CSBlocks), day, fmt.Sprintf("%.3f", peak),
			fmt.Sprintf("%.3f", januaryPeak(c, 2020)))
	}
	return fmt.Sprintf("Figure 9 — China in January 2020 (paper: peaks around 2020-01-27, Spring Festival + Wuhan lockdown;\n"+
		"April/June peaks also present in the paper's Figure 9b)\n%s", t)
}

// Figure10Result covers India in February and March 2020 (§4.3).
type Figure10Result struct {
	Delhi CityStudy
	// RiotsPeak is the largest downward fraction during the Delhi riots
	// window (Feb 23 – Mar 1); CurfewPeak during the Janata curfew /
	// lockdown window (Mar 20 – Mar 28). The paper finds the curfew peak
	// is the location's largest.
	RiotsPeak, CurfewPeak float64
}

// Figure10 studies New Delhi's two 2020 events.
func Figure10(opts Options) (*Figure10Result, error) {
	st, err := study2020h1(opts)
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{Delhi: st.city("New Delhi", cellDelhi)}
	res.RiotsPeak = res.Delhi.PeakIn(netsim.Date(2020, time.February, 22), netsim.Date(2020, time.March, 2))
	res.CurfewPeak = res.Delhi.PeakIn(netsim.Date(2020, time.March, 19), netsim.Date(2020, time.March, 29))
	return res, nil
}

// String renders the two event windows.
func (r *Figure10Result) String() string {
	day, peak := r.Delhi.Peak()
	return fmt.Sprintf(
		"Figure 10 — New Delhi %s, 2020h1 (%d CS blocks)\n"+
			"  overall peak: %s at %.3f\n"+
			"  riots window (Feb 23–29) peak: %.3f   (paper: ~2%% of blocks)\n"+
			"  Janata curfew window (Mar 20–28) peak: %.3f   (paper: ~8%%, the largest drop)\n",
		r.Delhi.Cell, r.Delhi.CSBlocks, day, peak, r.RiotsPeak, r.CurfewPeak)
}

// Figure12Result is the 2023q1 Beijing control (Appendix B.3).
type Figure12Result struct {
	Beijing CityStudy
	// FestivalPeak is the largest downward fraction near the 2023 Spring
	// Festival (Jan 20–30).
	FestivalPeak float64
}

// Figure12 re-runs the Beijing analysis on 2023q1.
func Figure12(opts Options) (*Figure12Result, error) {
	st, err := study2023q1(opts)
	if err != nil {
		return nil, err
	}
	res := &Figure12Result{Beijing: st.city("Beijing", cellBeijing)}
	res.FestivalPeak = res.Beijing.PeakIn(netsim.Date(2023, time.January, 19), netsim.Date(2023, time.January, 31))
	return res, nil
}

// String renders the control outcome.
func (r *Figure12Result) String() string {
	day, peak := r.Beijing.Peak()
	return fmt.Sprintf(
		"Figure 12 — Beijing 2023q1 control (%d CS blocks): peak %s at %.3f; festival-window peak %.3f\n"+
			"(paper: significant peak around 2023-01-20, the 2023 Spring Festival)\n",
		r.Beijing.CSBlocks, day, peak, r.FestivalPeak)
}

// Figure13Result is the 2023q1 New Delhi null control (Appendix B.4).
type Figure13Result struct {
	Delhi CityStudy
	// MaxFraction is the largest daily downward fraction anywhere in the
	// quarter; the paper sees "no distinguishable peak".
	MaxFraction float64
}

// Figure13 re-runs the New Delhi analysis on 2023q1.
func Figure13(opts Options) (*Figure13Result, error) {
	st, err := study2023q1(opts)
	if err != nil {
		return nil, err
	}
	res := &Figure13Result{Delhi: st.city("New Delhi", cellDelhi)}
	_, res.MaxFraction = res.Delhi.Peak()
	return res, nil
}

// String renders the null-control outcome.
func (r *Figure13Result) String() string {
	return fmt.Sprintf(
		"Figure 13 — New Delhi 2023q1 control (%d CS blocks): max daily downward fraction %.3f\n"+
			"(paper: no distinguishable peak, confirming the 2020 changes were not local holidays)\n",
		r.Delhi.CSBlocks, r.MaxFraction)
}
