package experiments

import (
	"strings"
	"testing"
)

// TestStreaming exercises the streaming-daemon acceptance contract at
// reduced scale. Streaming itself errors on any contract breach (batch
// divergence, non-prefix resume, final divergence, latency bound blown,
// kill schedule never fired, vacuous run), so a nil error plus the
// verdict fields is the whole acceptance check.
func TestStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a batch analysis plus two full streaming runs")
	}
	res, err := Streaming(Options{Blocks: 24})
	if err != nil {
		t.Fatalf("streaming contract broken: %v", err)
	}
	if !res.BatchIdentical || !res.Identical {
		t.Fatalf("streaming results diverged:\n%s", res)
	}
	if res.Incarnations < 2 {
		t.Fatalf("kill-and-resume was never exercised:\n%s", res)
	}
	if res.Events == 0 {
		t.Fatalf("no events emitted; the run is vacuous:\n%s", res)
	}
	if res.MaxLatencyRounds > res.LatencyBoundRounds {
		t.Fatalf("latency bound violated:\n%s", res)
	}
	if !strings.Contains(res.String(), "OK") {
		t.Fatalf("report does not state the verdict:\n%s", res)
	}
}
