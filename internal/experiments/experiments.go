// Package experiments regenerates every table and figure of the paper's
// evaluation (§3–§4, appendices) on the simulated substrate. Each
// experiment is a pure function of its options (all randomness is seeded),
// returns a typed result with a text rendering, and is exercised by a
// bench target in the repository root.
//
// Scale note: the paper measures 5.2M /24 blocks over up to 24 weeks; the
// defaults here use 10²–10³ blocks so a full run finishes in seconds.
// Results are therefore reported as fractions and orderings (who wins, by
// roughly what factor, where crossovers fall), not absolute counts.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// Options is the shared experiment scale knob.
type Options struct {
	// Blocks scales the world size; zero takes each experiment's default.
	Blocks int
	// Seed drives all randomness (default 1).
	Seed uint64
	// Ctx, when non-nil, cancels long experiment runs early.
	Ctx context.Context
}

func (o Options) blocks(def int) int {
	if o.Blocks > 0 {
		return o.Blocks
	}
	return def
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// parallelEach runs fn(i) for i in [0, n) on all CPUs.
func parallelEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// classification is a compact per-block classification outcome.
type classification struct {
	responsive bool
	diurnal    bool
	wideSwing  bool
	sensitive  bool
}

// classifyWorld probes every block over [start,end) with the engine and
// classifies change sensitivity over the same window, in parallel.
func classifyWorld(world []*dataset.WorldBlock, eng *probe.Engine, start, end int64, cfg blockclass.Config, repair bool) []classification {
	out := make([]classification, len(world))
	parallelEach(len(world), func(i int) {
		wb := world[i]
		eb := wb.EverActive()
		if len(eb) == 0 {
			return
		}
		perObs, err := eng.Collect(wb.Block, start, end)
		if err != nil {
			return
		}
		series, err := reconstruct.ReconstructObservers(perObs, eb, repair)
		if err != nil {
			return
		}
		res, err := blockclass.Classify(series, start, end, cfg)
		if err != nil {
			return
		}
		out[i] = classification{
			responsive: res.Responsive,
			diurnal:    res.Diurnal,
			wideSwing:  res.WideSwing,
			sensitive:  res.ChangeSensitive,
		}
	})
	return out
}

// counts tallies a classification slice into Table 2 style rows.
type counts struct {
	Routed, NotResponsive, Responsive   int
	Diurnal, NotDiurnal                 int
	WideSwing, NarrowSwing              int
	ChangeSensitive, NotChangeSensitive int
}

func tally(cls []classification) counts {
	var c counts
	c.Routed = len(cls)
	for _, r := range cls {
		if !r.responsive {
			c.NotResponsive++
			continue
		}
		c.Responsive++
		if r.diurnal {
			c.Diurnal++
		} else {
			c.NotDiurnal++
		}
		if r.wideSwing {
			c.WideSwing++
		} else {
			c.NarrowSwing++
		}
		if r.sensitive {
			c.ChangeSensitive++
		} else {
			c.NotChangeSensitive++
		}
	}
	return c
}

// intersect combines two classifications the way the paper intersects
// quarters into half-years (§3.4): a block passes a filter over the long
// window only if it passes in both halves.
func intersect(a, b []classification) []classification {
	out := make([]classification, len(a))
	for i := range a {
		out[i] = classification{
			responsive: a[i].responsive || b[i].responsive,
			diurnal:    a[i].diurnal && b[i].diurnal,
			wideSwing:  a[i].wideSwing && b[i].wideSwing,
			sensitive:  a[i].sensitive && b[i].sensitive,
		}
	}
	return out
}

// table renders labeled rows of equal length as fixed-width text.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	writeRow(dashes(widths))
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// sortedKeys returns map keys in a deterministic order for rendering.
func sortedKeys[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}

// lossyChinaBlocks marks the destinations that observer w reaches over a
// congested link: about a quarter of Chinese blocks (§3.3).
func lossyChinaBlocks(world []*dataset.WorldBlock) func(id netsim.BlockID) bool {
	lossy := map[netsim.BlockID]bool{}
	for _, wb := range world {
		if strings.HasPrefix(wb.Place.Region.Code, "CN") &&
			wb.Place.Seed%4 == 0 {
			lossy[wb.ID] = true
		}
	}
	return func(id netsim.BlockID) bool { return lossy[id] }
}
