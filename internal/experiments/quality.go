package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
	"github.com/diurnalnet/diurnal/internal/stats"
)

// surveySeries builds the ground-truth active-count series from full
// per-round scans, the analogue of the paper's it89 Internet surveys.
func surveySeries(b *netsim.Block, start, end int64) *reconstruct.Series {
	s := &reconstruct.Series{}
	var curT int64 = -1
	up := 0
	probe.Survey(b, start, end, func(r probe.Record) {
		if r.T != curT {
			if curT >= 0 {
				s.Times = append(s.Times, curT)
				s.Counts = append(s.Counts, float64(up))
			}
			curT = r.T
			up = 0
		}
		if r.Up {
			up++
		}
	})
	if curT >= 0 {
		s.Times = append(s.Times, curT)
		s.Counts = append(s.Counts, float64(up))
	}
	return s
}

// Table3Result reproduces Table 3: classification counts from the survey
// ground truth and from four reconstruction options, over the same blocks.
type Table3Result struct {
	Columns []string
	Counts  map[string]counts
	// TruthSensitive is the number of change-sensitive blocks in ground
	// truth; RecoveredByBest is how many of those the best reconstruction
	// (4 observers, matched 2-week window) also finds (the paper's 70%).
	TruthSensitive, RecoveredByBest int
}

// Table3 compares reconstruction options against survey ground truth over
// the it89 two-week window.
func Table3(opts Options) (*Table3Result, error) {
	nBlocks := opts.blocks(400)
	it89, err := dataset.FindSpec("2020it89-w")
	if err != nil {
		return nil, err
	}
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   nBlocks,
		Seed:     opts.seed() + 3,
		Calendar: events.Year2020(),
		Start:    netsim.Date(2020, time.January, 1),
		End:      netsim.Date(2020, time.April, 1),
	})
	if err != nil {
		return nil, err
	}
	cfg := blockclass.Default()

	// Ground truth from full scans over the survey window.
	truth := make([]classification, len(world))
	truthSensitive := make([]bool, len(world))
	parallelEach(len(world), func(i int) {
		s := surveySeries(world[i].Block, it89.Start, it89.End())
		res, err := blockclass.Classify(s, it89.Start, it89.End(), cfg)
		if err != nil {
			return
		}
		truth[i] = classification{
			responsive: res.Responsive, diurnal: res.Diurnal,
			wideSwing: res.WideSwing, sensitive: res.ChangeSensitive,
		}
		truthSensitive[i] = res.ChangeSensitive
	})

	type option struct {
		name       string
		sites      []string
		start, end int64
	}
	q1 := netsim.Date(2020, time.January, 1)
	options := []option{
		{"2020q1-w", []string{"w"}, q1, q1 + 12*7*netsim.SecondsPerDay},
		{"2020q1-ejnw", []string{"e", "j", "n", "w"}, q1, q1 + 12*7*netsim.SecondsPerDay},
		{"2020m1-ejnw", []string{"e", "j", "n", "w"}, q1, q1 + 4*7*netsim.SecondsPerDay},
		{"2020it89-match-ejnw", []string{"e", "j", "n", "w"}, it89.Start, it89.End()},
	}

	res := &Table3Result{
		Columns: []string{"2020it89-w(truth)"},
		Counts:  map[string]counts{"2020it89-w(truth)": tally(truth)},
	}
	lossy := lossyChinaBlocks(world)
	matchSensitive := make([]bool, len(world))
	for _, opt := range options {
		eng := &probe.Engine{QuarterSeed: netsim.Hash64(uint64(opt.start))}
		for _, site := range opt.sites {
			o, err := dataset.ObserverFor(site, lossy)
			if err != nil {
				return nil, err
			}
			eng.Observers = append(eng.Observers, o)
		}
		cls := classifyWorld(world, eng, opt.start, opt.end, cfg, true)
		// Restrict to blocks responsive in ground truth (the survey
		// intersection).
		restricted := make([]classification, 0, len(cls))
		for i, c := range cls {
			if truth[i].responsive {
				restricted = append(restricted, c)
			}
		}
		res.Columns = append(res.Columns, opt.name)
		res.Counts[opt.name] = tally(restricted)
		if opt.name == "2020it89-match-ejnw" {
			for i, c := range cls {
				matchSensitive[i] = c.sensitive
			}
		}
	}
	for i := range world {
		if truthSensitive[i] {
			res.TruthSensitive++
			if matchSensitive[i] {
				res.RecoveredByBest++
			}
		}
	}
	return res, nil
}

// String renders the Table 3 layout.
func (r *Table3Result) String() string {
	t := &table{header: append([]string{"row"}, r.Columns...)}
	row := func(label string, get func(c counts) int) {
		cells := []string{label}
		for _, name := range r.Columns {
			cells = append(cells, itoa(get(r.Counts[name])))
		}
		t.add(cells...)
	}
	row("responsive", func(c counts) int { return c.Responsive })
	row("not diurnal", func(c counts) int { return c.NotDiurnal })
	row("diurnal", func(c counts) int { return c.Diurnal })
	row("narrow swing", func(c counts) int { return c.NarrowSwing })
	row("wide swing", func(c counts) int { return c.WideSwing })
	row("not change-sensit.", func(c counts) int { return c.NotChangeSensitive })
	row("change-sensitive", func(c counts) int { return c.ChangeSensitive })
	return fmt.Sprintf("Table 3 — reconstruction vs survey ground truth\n%srecovered %d of %d truth change-sensitive blocks (%s) with 4 sites over the matched window\n",
		t, r.RecoveredByBest, r.TruthSensitive, pct(r.RecoveredByBest, r.TruthSensitive))
}

// Figure4Result compares reconstructed series against ground truth for an
// easy (sparse) and a hard (dense always-up) block.
type Figure4Result struct {
	EasyR, HardR       float64 // Pearson correlations (paper: 0.89 vs 0.40)
	EasyScan, HardScan int64   // median scan times in seconds
}

// Figure4 reproduces the two reconstruction case studies of Figure 4 /
// Appendix C.
func Figure4(opts Options) (*Figure4Result, error) {
	start := netsim.Date(2020, time.February, 19)
	end := start + 14*netsim.SecondsPerDay
	easy, err := netsim.NewBlock(0x101, opts.seed()+41, netsim.Spec{Workers: 60, AlwaysOn: 6})
	if err != nil {
		return nil, err
	}
	hard, err := netsim.NewBlock(0x102, opts.seed()+42, netsim.Spec{Workers: 120, AlwaysOn: 120})
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{}
	measure := func(b *netsim.Block, nObs int) (float64, int64, error) {
		eng := &probe.Engine{Observers: probe.StandardObservers(nObs), QuarterSeed: opts.seed()}
		perObs, err := eng.Collect(b, start, end)
		if err != nil {
			return 0, 0, err
		}
		merged := reconstruct.Merge(perObs)
		series, err := reconstruct.Reconstruct(merged, b.EverActive())
		if err != nil {
			return 0, 0, err
		}
		est := series.Resample(start, end, 3600)
		truth := surveySeries(b, start, end).Resample(start, end, 3600)
		r, err := stats.Pearson(est, truth)
		if err != nil {
			return 0, 0, err
		}
		scans := reconstruct.ScanTimes(merged, b.EverActive())
		var med int64
		if len(scans) > 0 {
			sorted := append([]int64(nil), scans...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			med = sorted[len(sorted)/2]
		}
		return r, med, nil
	}
	var err2 error
	if res.EasyR, res.EasyScan, err2 = measure(easy, 4); err2 != nil {
		return nil, err2
	}
	// The hard block is observed with a single site, compounding the
	// always-up low-pass effect the paper describes.
	if res.HardR, res.HardScan, err2 = measure(hard, 1); err2 != nil {
		return nil, err2
	}
	return res, nil
}

// String summarizes Figure 4.
func (r *Figure4Result) String() string {
	return fmt.Sprintf(
		"Figure 4 — reconstruction vs ground truth\n"+
			"  easy block: Pearson r = %.2f, median scan %s (paper: r = 0.89, ~1 h)\n"+
			"  hard block: Pearson r = %.2f, median scan %s (paper: r = 0.40, ~8 h)\n",
		r.EasyR, fmtDur(r.EasyScan), r.HardR, fmtDur(r.HardScan))
}

func fmtDur(sec int64) string {
	return fmt.Sprintf("%.1fh", float64(sec)/3600)
}

// Figure5Cell is one heatmap bin: classification failures by scan time and
// target-list size.
type Figure5Cell struct {
	ScanHoursLo int // bin lower bound in hours (2-hour bins up to 24)
	EBLo        int // |E(b)| bin lower bound (40-address bins)
	Failures    int
}

// Figure5Result is the failure heatmap of reconstruction vs truth.
type Figure5Result struct {
	Cells         []Figure5Cell
	TotalFailures int
	// CornerShare is the fraction of failures with scan time >= 6 h or
	// |E(b)| >= 120 — the paper's "problems occur in full blocks with
	// longer scan time".
	CornerShare float64
}

// Figure5 bins change-sensitivity failures (truth says sensitive,
// reconstruction disagrees) by observed scan time and |E(b)|.
func Figure5(opts Options) (*Figure5Result, error) {
	nBlocks := opts.blocks(300)
	it89, err := dataset.FindSpec("2020it89-w")
	if err != nil {
		return nil, err
	}
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   nBlocks,
		Seed:     opts.seed() + 5,
		Calendar: events.Year2020(),
		Start:    it89.Start,
		End:      it89.End(),
	})
	if err != nil {
		return nil, err
	}
	cfg := blockclass.Default()
	// Single-observer reconstruction: the paper's Figure 5 exists to show
	// which blocks are under-observed without additional probing, and our
	// staggered multi-observer prober reconstructs even dense blocks too
	// well to show any failures.
	eng := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: opts.seed()}
	type sample struct {
		fail      bool
		scanHours float64
		eb        int
	}
	samples := make([]sample, len(world))
	parallelEach(len(world), func(i int) {
		b := world[i].Block
		eb := b.EverActive()
		if len(eb) == 0 {
			return
		}
		truthRes, err := blockclass.Classify(surveySeries(b, it89.Start, it89.End()), it89.Start, it89.End(), cfg)
		if err != nil || !truthRes.ChangeSensitive {
			return
		}
		perObs, err := eng.Collect(b, it89.Start, it89.End())
		if err != nil {
			return
		}
		merged := reconstruct.Merge(perObs)
		series, err := reconstruct.Reconstruct(merged, eb)
		if err != nil {
			return
		}
		recRes, err := blockclass.Classify(series, it89.Start, it89.End(), cfg)
		if err != nil {
			return
		}
		scans := reconstruct.ScanTimes(merged, eb)
		var med float64
		if len(scans) > 0 {
			sorted := append([]int64(nil), scans...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			med = float64(sorted[len(sorted)/2]) / 3600
		}
		samples[i] = sample{fail: !recRes.ChangeSensitive, scanHours: med, eb: len(eb)}
	})
	res := &Figure5Result{}
	bins := map[[2]int]int{}
	corner := 0
	for _, s := range samples {
		if !s.fail {
			continue
		}
		res.TotalFailures++
		sh := int(s.scanHours/2) * 2
		if sh > 22 {
			sh = 22
		}
		eb := s.eb / 40 * 40
		bins[[2]int{sh, eb}]++
		if s.scanHours >= 6 || s.eb >= 120 {
			corner++
		}
	}
	for _, k := range sortedKeys(bins, func(a, b [2]int) bool {
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	}) {
		res.Cells = append(res.Cells, Figure5Cell{ScanHoursLo: k[0], EBLo: k[1], Failures: bins[k]})
	}
	if res.TotalFailures > 0 {
		res.CornerShare = float64(corner) / float64(res.TotalFailures)
	}
	return res, nil
}

// String renders the failure heatmap.
func (r *Figure5Result) String() string {
	t := &table{header: []string{"scan time (h)", "|E(b)| bin", "failures"}}
	for _, c := range r.Cells {
		t.add(fmt.Sprintf("%d-%d", c.ScanHoursLo, c.ScanHoursLo+2), fmt.Sprintf("%d-%d", c.EBLo, c.EBLo+40), itoa(c.Failures))
	}
	return fmt.Sprintf("Figure 5 — change-sensitivity failures vs scan time × |E(b)| (%d failures, %.0f%% with scan >= 6h or |E(b)| >= 120)\n%s",
		r.TotalFailures, 100*r.CornerShare, t)
}

// FBSModelResult reproduces §3.2.3: a logistic model predicting which
// blocks take more than six hours to fully scan.
type FBSModelResult struct {
	TrainBlocks       int
	SlowBlocks        int
	FalseNegativeRate float64 // paper: 0.5%
	Accuracy          float64
	SelectedForExtra  int // blocks the model selects for additional probing
}

// FBSModel trains the full-block-scan time predictor on (|E(b)|,
// availability) features.
func FBSModel(opts Options) (*FBSModelResult, error) {
	nBlocks := opts.blocks(500)
	start := netsim.Date(2020, time.January, 6)
	end := start + 4*netsim.SecondsPerDay
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks,
		Seed:   opts.seed() + 7,
		Start:  start,
		End:    end,
	})
	if err != nil {
		return nil, err
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	type row struct {
		feats []float64
		slow  bool
		ok    bool
	}
	rows := make([]row, len(world))
	parallelEach(len(world), func(i int) {
		b := world[i].Block
		eb := b.EverActive()
		// The paper discards blocks with |E(b)| < 32 and A < 0.05 as
		// trivially fast.
		if len(eb) < 32 {
			return
		}
		perObs, err := eng.Collect(b, start, end)
		if err != nil {
			return
		}
		merged := reconstruct.Merge(perObs)
		avail := reconstruct.MeanReplyRate(merged)
		if avail < 0.05 {
			return
		}
		scans := reconstruct.ScanTimes(merged, eb)
		if len(scans) == 0 {
			rows[i] = row{feats: []float64{float64(len(eb)), avail}, slow: true, ok: true}
			return
		}
		sorted := append([]int64(nil), scans...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		med := sorted[len(sorted)/2]
		rows[i] = row{feats: []float64{float64(len(eb)), avail}, slow: med > 6*3600, ok: true}
	})
	var x [][]float64
	var y []bool
	for _, r := range rows {
		if r.ok {
			x = append(x, r.feats)
			y = append(y, r.slow)
		}
	}
	if len(x) < 10 {
		return nil, fmt.Errorf("experiments: only %d usable FBS training blocks", len(x))
	}
	model, err := stats.TrainLogistic(x, y, stats.LogisticTrainOpts{Iterations: 2000})
	if err != nil {
		return nil, err
	}
	var conf stats.Confusion
	selected := 0
	for i := range x {
		pred := model.Predict(x[i])
		conf.Add(pred, y[i])
		if pred {
			selected++
		}
	}
	res := &FBSModelResult{
		TrainBlocks:       len(x),
		FalseNegativeRate: conf.FalseNegativeRate(),
		Accuracy:          float64(conf.TP+conf.TN) / float64(len(x)),
		SelectedForExtra:  selected,
	}
	for _, v := range y {
		if v {
			res.SlowBlocks++
		}
	}
	return res, nil
}

// String summarizes the FBS model quality.
func (r *FBSModelResult) String() string {
	return fmt.Sprintf(
		"FBS model (§3.2.3) — logistic regression on (|E(b)|, availability)\n"+
			"  %d training blocks, %d slow (> 6 h); accuracy %.1f%%, false-negative rate %.1f%% (paper: 0.5%%)\n"+
			"  %d blocks selected for additional probing\n",
		r.TrainBlocks, r.SlowBlocks, 100*r.Accuracy, 100*r.FalseNegativeRate, r.SelectedForExtra)
}

// ExtraProbingResult is the end-to-end §2.8 study: identify under-observed
// blocks with the FBS model, deploy the additional-observation prober for
// them, and count how many change-sensitive classifications it recovers.
type ExtraProbingResult struct {
	Blocks int
	// TruthSensitive is the survey-truth change-sensitive count among the
	// studied blocks; BaseRecovered and ExtraRecovered are how many a
	// single standard observer finds without and with the designed
	// additional observer.
	TruthSensitive, BaseRecovered, ExtraRecovered int
	// Selected is how many blocks the FBS model flagged for additional
	// probing.
	Selected int
	// MedianScanBase and MedianScanExtra are median full-block-scan times
	// (hours) over the selected blocks.
	MedianScanBase, MedianScanExtra float64
}

// ExtraProbing reproduces §2.8/§3.2.3 end to end on dense blocks.
func ExtraProbing(opts Options) (*ExtraProbingResult, error) {
	nBlocks := opts.blocks(250)
	start := netsim.Date(2020, time.January, 1)
	end := start + 28*netsim.SecondsPerDay
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks, Seed: opts.seed() + 91,
		Start: start, End: end, OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		return nil, err
	}
	res := &ExtraProbingResult{Blocks: len(world)}
	cfg := blockclass.Default()
	base := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: opts.seed()}
	extraObs := probe.StandardObservers(2)
	extraObs[1].Name = "x"
	extraObs[1].Extra = 4
	extra := &probe.Engine{Observers: extraObs, QuarterSeed: opts.seed()}

	type outcome struct {
		truth, baseCS, extraCS bool
		selected               bool
		scanBase, scanExtra    float64
	}
	outcomes := make([]outcome, len(world))
	parallelEach(len(world), func(i int) {
		b := world[i].Block
		eb := b.EverActive()
		if len(eb) == 0 {
			return
		}
		truthRes, err := blockclass.Classify(surveySeries(b, start, end), start, end, cfg)
		if err != nil || !truthRes.ChangeSensitive {
			return
		}
		o := &outcomes[i]
		o.truth = true
		measure := func(eng *probe.Engine) (bool, float64) {
			perObs, err := eng.Collect(b, start, end)
			if err != nil {
				return false, 0
			}
			merged := reconstruct.Merge(perObs)
			series, err := reconstruct.Reconstruct(merged, eb)
			if err != nil {
				return false, 0
			}
			r, err := blockclass.Classify(series, start, end, cfg)
			if err != nil {
				return false, 0
			}
			scans := reconstruct.ScanTimes(merged, eb)
			med := float64(end-start) / 3600
			if len(scans) > 0 {
				vals := make([]float64, len(scans))
				for j, s := range scans {
					vals[j] = float64(s) / 3600
				}
				med = stats.Median(vals)
			}
			return r.ChangeSensitive, med
		}
		o.baseCS, o.scanBase = measure(base)
		// The paper's selection rule: blocks with |E(b)| >= 32 and an
		// expected scan beyond 6 hours get the designed observer.
		o.selected = len(eb) >= 32 && o.scanBase > 6
		if o.selected {
			o.extraCS, o.scanExtra = measure(extra)
		} else {
			o.extraCS, o.scanExtra = o.baseCS, o.scanBase
		}
	})
	var scanB, scanX []float64
	for _, o := range outcomes {
		if !o.truth {
			continue
		}
		res.TruthSensitive++
		if o.baseCS {
			res.BaseRecovered++
		}
		if o.extraCS {
			res.ExtraRecovered++
		}
		if o.selected {
			res.Selected++
			scanB = append(scanB, o.scanBase)
			scanX = append(scanX, o.scanExtra)
		}
	}
	if len(scanB) > 0 {
		res.MedianScanBase = stats.Median(scanB)
		res.MedianScanExtra = stats.Median(scanX)
	}
	return res, nil
}

// String summarizes the additional-probing gain.
func (r *ExtraProbingResult) String() string {
	return fmt.Sprintf(
		"§2.8 — additional observations for under-probed blocks\n"+
			"  %d truth change-sensitive blocks; 1 standard observer recovers %d; with the designed\n"+
			"  extra-probe observer on the %d FBS-selected blocks, recovery rises to %d\n"+
			"  median scan over selected blocks: %.1f h -> %.1f h (paper guarantees <= 6 h)\n",
		r.TruthSensitive, r.BaseRecovered, r.Selected, r.ExtraRecovered,
		r.MedianScanBase, r.MedianScanExtra)
}

// ObserverHealthResult reproduces §2.7's observer cross-check: the
// procedure that identified the 2020 hardware problems at sites c and g
// and removed them from analysis.
type ObserverHealthResult struct {
	Sites    []string
	Rates    []float64
	Suspects []string
	// CSWithBroken / CSWithoutBroken / CSTruthful compare change-sensitive
	// counts using all five sites, the four healthy sites, and the survey
	// ground truth.
	CSWithBroken, CSWithoutBroken, CSTruth int
}

// ObserverHealth probes a world with sites e, j, n, w plus the broken
// site c, flags the outlier, and shows that excluding it restores
// classification fidelity.
func ObserverHealth(opts Options) (*ObserverHealthResult, error) {
	nBlocks := opts.blocks(200)
	start := netsim.Date(2020, time.January, 1)
	end := start + 28*netsim.SecondsPerDay
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks, Seed: opts.seed() + 97,
		Start: start, End: end, OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		return nil, err
	}
	sites := []string{"e", "j", "n", "w", "c"}
	eng := &probe.Engine{QuarterSeed: opts.seed()}
	for _, site := range sites {
		o, err := dataset.ObserverFor(site, nil)
		if err != nil {
			return nil, err
		}
		o.Extra = 2 // sample beyond the first positive so rates are comparable
		eng.Observers = append(eng.Observers, o)
	}
	res := &ObserverHealthResult{Sites: sites}
	cfg := blockclass.Default()
	health := reconstruct.NewObserverHealth(len(sites))
	type out struct{ truth, withBroken, without bool }
	outs := make([]out, len(world))
	var mu sync.Mutex
	parallelEach(len(world), func(i int) {
		b := world[i].Block
		eb := b.EverActive()
		if len(eb) == 0 {
			return
		}
		perObs, err := eng.Collect(b, start, end)
		if err != nil {
			return
		}
		mu.Lock()
		health.Add(perObs)
		mu.Unlock()
		truthRes, err := blockclass.Classify(surveySeries(b, start, end), start, end, cfg)
		if err != nil {
			return
		}
		outs[i].truth = truthRes.ChangeSensitive
		classify := func(streams [][]probe.Record) bool {
			copies := make([][]probe.Record, len(streams))
			for j := range streams {
				copies[j] = append([]probe.Record(nil), streams[j]...)
			}
			series, err := reconstruct.ReconstructObservers(copies, eb, true)
			if err != nil {
				return false
			}
			r, err := blockclass.Classify(series, start, end, cfg)
			return err == nil && r.ChangeSensitive
		}
		outs[i].withBroken = classify(perObs)
		outs[i].without = classify(perObs[:4])
	})
	res.Rates = health.Rates()
	for _, oi := range health.Suspect(0.1) {
		res.Suspects = append(res.Suspects, sites[oi])
	}
	for _, o := range outs {
		if o.truth {
			res.CSTruth++
		}
		if o.withBroken {
			res.CSWithBroken++
		}
		if o.without {
			res.CSWithoutBroken++
		}
	}
	return res, nil
}

// String renders the cross-check.
func (r *ObserverHealthResult) String() string {
	t := &table{header: []string{"site", "reply rate"}}
	for i, s := range r.Sites {
		t.add(s, fmt.Sprintf("%.3f", r.Rates[i]))
	}
	return fmt.Sprintf(
		"§2.7 — observer cross-check (paper: sites c and g discarded in 2020 after hardware problems)\n%s"+
			"suspect sites: %v\n"+
			"change-sensitive blocks: truth %d; with broken site %d; healthy sites only %d\n",
		t, r.Suspects, r.CSTruth, r.CSWithBroken, r.CSWithoutBroken)
}

// ProfileSeparationResult measures the §2.6 future-work extension: using
// the seasonal component's weekday/weekend balance to tell workplace
// blocks from home blocks.
type ProfileSeparationResult struct {
	WorkplaceBlocks, HomeBlocks     int
	WorkplaceCorrect, HomeCorrect   int
	WorkplaceAccuracy, HomeAccuracy float64
}

// ProfileSeparation classifies the change-sensitive blocks of a quiet
// world and scores the profile against the archetype ground truth.
func ProfileSeparation(opts Options) (*ProfileSeparationResult, error) {
	nBlocks := opts.blocks(300)
	start := netsim.Date(2020, time.January, 1)
	end := start + 56*netsim.SecondsPerDay
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks, Seed: opts.seed() + 101,
		Start: start, End: end, OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, start+28*netsim.SecondsPerDay
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	res := &ProfileSeparationResult{}
	type out struct {
		arch    geo.Archetype
		profile core.ProfileKind
		cs      bool
	}
	outs := make([]out, len(world))
	parallelEach(len(world), func(i int) {
		wb := world[i]
		arch := wb.Place.Archetype
		if arch != geo.Workplace && arch != geo.HomePublic {
			return
		}
		a, err := cfg.AnalyzeBlock(eng, wb.Block)
		if err != nil || !a.Class.ChangeSensitive {
			return
		}
		outs[i] = out{arch: arch, profile: a.Profile(), cs: true}
	})
	for _, o := range outs {
		if !o.cs {
			continue
		}
		switch o.arch {
		case geo.Workplace:
			res.WorkplaceBlocks++
			if o.profile == core.ProfileWorkplace {
				res.WorkplaceCorrect++
			}
		case geo.HomePublic:
			res.HomeBlocks++
			if o.profile == core.ProfileHome {
				res.HomeCorrect++
			}
		}
	}
	if res.WorkplaceBlocks > 0 {
		res.WorkplaceAccuracy = float64(res.WorkplaceCorrect) / float64(res.WorkplaceBlocks)
	}
	if res.HomeBlocks > 0 {
		res.HomeAccuracy = float64(res.HomeCorrect) / float64(res.HomeBlocks)
	}
	return res, nil
}

// String renders the separation accuracy.
func (r *ProfileSeparationResult) String() string {
	return fmt.Sprintf(
		"§2.6 future work — workplace vs home profiling from the seasonal component\n"+
			"  workplace blocks: %d of %d correct (%.0f%%)\n"+
			"  home blocks:      %d of %d correct (%.0f%%)\n",
		r.WorkplaceCorrect, r.WorkplaceBlocks, 100*r.WorkplaceAccuracy,
		r.HomeCorrect, r.HomeBlocks, 100*r.HomeAccuracy)
}
