package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// SupervisorResult records the self-healing supervisor acceptance study:
// one world run four ways — plain; fully supervised but fault-free;
// under a mid-run observer flap; under injected per-block stalls with
// hedged re-dispatch and a checkpoint journal attached.
type SupervisorResult struct {
	// Blocks is the world size; ProbedBlocks counts blocks with at least
	// one ever-active target (only those reach the prober and advance the
	// breaker tracker).
	Blocks, ProbedBlocks int

	// PlainDuration and CleanDuration time the baseline run and the
	// fault-free supervised run (breakers + hedging + quorum + bounded
	// admission); CleanIdentical reports whether the supervised run
	// reproduced the plain output byte for byte.
	PlainDuration, CleanDuration time.Duration
	CleanIdentical               bool

	// Flap phase: observer FlapObserver goes silent over a window of
	// collection calls. The breaker must open, readmit the observer after
	// it recovers, and flag the blocks analyzed below quorum.
	FlapObserver            int
	FlapTransitions         []string
	FlapOpened, FlapReadmit bool
	FlapShortfalls          int
	FlapDegraded            bool

	// Stall phase: a fraction of blocks stall for StallDelay on their
	// first collection attempt; hedged re-dispatch must keep the wall time
	// under WallBound (2x the unstalled supervised run, floored for toy
	// worlds whose clean run is shorter than a single stall) and journal
	// every block exactly once.
	StallDelay                    time.Duration
	StalledDuration, WallBound    time.Duration
	HedgedBlocks, HedgeWins       int
	JournalEntries, StallAnalyzed int
	WallBounded, ExactlyOnce      bool
}

// String renders the study as text.
func (r *SupervisorResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline supervisor over %d blocks (%d probed):\n", r.Blocks, r.ProbedBlocks)
	verdict := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "VIOLATED"
	}
	fmt.Fprintf(&b, "  fault-free: plain %v, supervised %v; outputs identical: %s\n",
		r.PlainDuration.Round(time.Millisecond), r.CleanDuration.Round(time.Millisecond),
		verdict(r.CleanIdentical))
	fmt.Fprintf(&b, "  flap of observer %d: opened=%v readmitted=%v shortfall blocks=%d degraded=%v\n",
		r.FlapObserver, r.FlapOpened, r.FlapReadmit, r.FlapShortfalls, r.FlapDegraded)
	for _, tx := range r.FlapTransitions {
		fmt.Fprintf(&b, "    %s\n", tx)
	}
	fmt.Fprintf(&b, "  stalls of %v: run took %v (bound %v: %s), %d hedges / %d hedge wins\n",
		r.StallDelay.Round(time.Millisecond), r.StalledDuration.Round(time.Millisecond),
		r.WallBound.Round(time.Millisecond), verdict(r.WallBounded), r.HedgedBlocks, r.HedgeWins)
	fmt.Fprintf(&b, "  journal: %d entries for %d analyzed blocks (exactly-once: %s)\n",
		r.JournalEntries, r.StallAnalyzed, verdict(r.ExactlyOnce))
	return b.String()
}

// fingerprintSansObservers digests a result with every per-block
// contributing-observer count zeroed, so supervised runs (which record
// them when a quorum is set) compare against plain runs byte for byte.
func fingerprintSansObservers(res *core.WorldResult) (string, error) {
	blocks := append([]core.BlockOutcome(nil), res.Blocks...)
	for i := range blocks {
		blocks[i].Observers = 0
	}
	return (&core.WorldResult{Blocks: blocks, Report: res.Report}).Fingerprint()
}

// Supervisor is the self-healing supervisor acceptance experiment. It
// asserts the three contracts of the runtime supervision layer: (1)
// fault-free supervision is byte-identical to the plain pipeline, (2) a
// mid-run observer flap trips that observer's breaker, flags the
// under-quorum blocks, and readmits the observer once it recovers, and
// (3) injected per-block stalls are rescued by hedged re-dispatch fast
// enough to keep wall time bounded, with exactly one journal entry per
// block despite double completions. A non-nil error means a contract is
// broken (or the harness could not run at all).
func Supervisor(opts Options) (*SupervisorResult, error) {
	start, end := q1Window()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(160),
		Seed:     opts.seed() + 41,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	const observers = 4
	eng := &probe.Engine{Observers: probe.StandardObservers(observers), QuarterSeed: opts.seed()}

	res := &SupervisorResult{Blocks: len(world)}
	for _, wb := range world {
		if len(wb.EverActive()) > 0 {
			res.ProbedBlocks++
		}
	}
	if res.ProbedBlocks < 24 {
		return nil, fmt.Errorf("only %d of %d blocks have ever-active targets; world too small for the flap schedule", res.ProbedBlocks, len(world))
	}

	// Phase 1: the plain baseline, timed.
	t0 := time.Now()
	plain, err := (&core.Pipeline{Config: cfg, Engine: eng}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("plain run: %w", err)
	}
	res.PlainDuration = time.Since(t0)
	want, err := plain.Fingerprint()
	if err != nil {
		return nil, err
	}

	// Phase 2: the full supervisor on a clean measurement plane. This is
	// the determinism contract — supervision may only change how blocks
	// are scheduled and policed, never what they compute.
	breaker := health.DefaultBreaker()
	hedge := health.DefaultHedge()
	t0 = time.Now()
	clean, err := (&core.Pipeline{
		Config:          cfg,
		Engine:          eng,
		ExcludeSuspects: true,
		Breaker:         &breaker,
		Hedge:           &hedge,
		Quorum:          2,
		MaxInflight:     8,
		MemoryBudget:    64 << 20,
	}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("supervised clean run: %w", err)
	}
	res.CleanDuration = time.Since(t0)
	got, err := fingerprintSansObservers(clean)
	if err != nil {
		return nil, err
	}
	res.CleanIdentical = got == want
	if !res.CleanIdentical {
		return res, fmt.Errorf("supervised fault-free run diverged from plain run: %s != %s", got[:16], want[:16])
	}
	if n := len(clean.Report.BreakerTransitions); n != 0 {
		return res, fmt.Errorf("fault-free run tripped breakers: %v", clean.Report.BreakerTransitions)
	}

	// Phase 3: a mid-run observer flap. The schedule scales with the
	// probed-block count n: only blocks with targets reach the prober, so
	// n — not the world size — is the tracker's clock. One worker makes
	// collection order the world order, so the window is deterministic.
	n := res.ProbedBlocks
	res.FlapObserver = observers - 1
	flapFrom := max(6, n/8)
	flapTo := flapFrom + max(8, n/4)
	flapEng := &faults.Engine{
		Inner: eng,
		Plan: &faults.Plan{
			Seed:  opts.seed() + 43,
			Flaps: []faults.Flap{{Observer: res.FlapObserver, FromCall: flapFrom, ToCall: flapTo}},
		},
	}
	flap, err := (&core.Pipeline{
		Config:  cfg,
		Engine:  flapEng,
		Workers: 1,
		Breaker: &health.BreakerConfig{
			Alpha: 0.5, Tol: 0.2, MinSamples: 4,
			Cooldown:  max(3, n/16),
			Probation: max(2, n/32),
		},
		Quorum: observers,
	}).Run(opts.ctx(), world)
	if err != nil {
		return res, fmt.Errorf("flap run: %w", err)
	}
	if flap.Report.AnalyzedBlocks != len(world) {
		return res, fmt.Errorf("flap failed blocks: analyzed %d of %d", flap.Report.AnalyzedBlocks, len(world))
	}
	for _, tx := range flap.Report.BreakerTransitions {
		res.FlapTransitions = append(res.FlapTransitions, tx.String())
		if tx.From == health.Closed && tx.To == health.Open {
			res.FlapOpened = true
		}
		if tx.From == health.HalfOpen && tx.To == health.Closed {
			res.FlapReadmit = true
		}
	}
	res.FlapShortfalls = len(flap.Report.QuorumShortfalls)
	res.FlapDegraded = flap.Report.Degraded()
	if !res.FlapOpened {
		return res, fmt.Errorf("breaker never opened under flap (calls %d..%d of %d); scores %v",
			flapFrom, flapTo, n, flap.Report.HealthScores)
	}
	if !res.FlapReadmit {
		return res, fmt.Errorf("recovered observer never readmitted; transitions: %v", res.FlapTransitions)
	}
	if res.FlapShortfalls == 0 {
		return res, fmt.Errorf("no blocks flagged below quorum during the flap")
	}
	if !res.FlapDegraded {
		return res, fmt.Errorf("a run with quorum shortfalls must report Degraded")
	}

	// Phase 4: per-block stalls, hedged re-dispatch, and a checkpoint
	// journal. The stall delay dwarfs the clean run, so without hedging a
	// single stalled block would blow the wall-time bound by itself.
	res.StallDelay = 8 * res.CleanDuration
	if res.StallDelay < 2*time.Second {
		res.StallDelay = 2 * time.Second
	}
	if res.StallDelay > 20*time.Second {
		res.StallDelay = 20 * time.Second
	}
	// The bound is 2x the unstalled supervised run. On toy worlds the
	// clean run can be shorter than scheduler noise, so the bound is
	// floored at clean + 1s — still far below the cost of even one
	// unrescued stall.
	res.WallBound = 2 * res.CleanDuration
	if floor := res.CleanDuration + time.Second; res.WallBound < floor {
		res.WallBound = floor
	}
	dir, err := os.MkdirTemp("", "diurnal-supervisor")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cp, err := core.OpenCheckpoint(filepath.Join(dir, "hedged.ckpt"))
	if err != nil {
		return nil, err
	}
	defer cp.Close()
	stallEng := &faults.Engine{
		Inner: eng,
		Plan: &faults.Plan{
			Seed:  opts.seed() + 47,
			Stall: &faults.Stall{Prob: 0.1, Delay: res.StallDelay, Attempts: 1, FromCall: 8},
		},
	}
	t0 = time.Now()
	stalled, err := (&core.Pipeline{
		Config:     cfg,
		Engine:     stallEng,
		Workers:    4,
		Checkpoint: cp,
		// A tight deadline (1.5x p95) and one hedge slot per worker keep
		// the rescue overhead small next to the 2x wall-time bound; a
		// false hedge on a merely slow block is wasted work, never wrong
		// output.
		Hedge: &health.HedgeConfig{
			Multiplier:    1.5,
			MinSamples:    4,
			MinDeadline:   10 * time.Millisecond,
			MaxConcurrent: 4,
			Poll:          2 * time.Millisecond,
		},
	}).Run(opts.ctx(), world)
	if err != nil {
		return res, fmt.Errorf("stalled run: %w", err)
	}
	res.StalledDuration = time.Since(t0)
	res.HedgedBlocks = stalled.Report.HedgedBlocks
	res.HedgeWins = stalled.Report.HedgeWins
	res.JournalEntries = cp.Entries()
	res.StallAnalyzed = stalled.Report.AnalyzedBlocks
	res.WallBounded = res.StalledDuration < res.WallBound
	res.ExactlyOnce = res.JournalEntries == res.StallAnalyzed
	if res.HedgedBlocks == 0 {
		return res, fmt.Errorf("stall injection triggered no hedges")
	}
	if got, err := fingerprintSansObservers(stalled); err != nil {
		return res, err
	} else if got != want {
		return res, fmt.Errorf("hedged stalled run diverged from plain run: %s != %s", got[:16], want[:16])
	}
	if !res.ExactlyOnce {
		return res, fmt.Errorf("journal holds %d entries for %d analyzed blocks: hedging double-journaled", res.JournalEntries, res.StallAnalyzed)
	}
	if !res.WallBounded {
		return res, fmt.Errorf("hedging failed to bound wall time: %v >= %v (clean run %v, stall %v)",
			res.StalledDuration, res.WallBound, res.CleanDuration, res.StallDelay)
	}
	return res, nil
}
