package experiments

import (
	"fmt"
	"time"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/render"
)

// Table4Result reproduces Table 4 (geographic coverage of human-activity
// change detection) and carries the per-cell stats that Figure 7 and
// Figure 14 reuse.
type Table4Result struct {
	// Report uses the paper's literal thresholds (>= 5 change-sensitive /
	// >= 5 responsive blocks per cell). Those thresholds presume the
	// paper's density of ~2,400 responsive blocks per observed cell; at
	// simulation scale ScaledReport applies the same thresholds scaled by
	// the blocks-per-cell ratio (ScaledThreshold), which is the
	// apples-to-apples comparison for the 60%-of-cells / 98.5%-of-blocks
	// claims.
	Report          geo.CoverageReport
	ScaledReport    geo.CoverageReport
	ScaledThreshold int
	Cells           map[geo.CellKey]*geo.CellStats
	// ByContinent counts change-sensitive blocks per continent (Figure 7's
	// qualitative story: Asia densest).
	ByContinent map[geo.Continent]int
}

// Table4 classifies a world over the 2020m1 window and accounts coverage
// with the paper's thresholds (>= 5 change-sensitive blocks for a
// represented cell, >= 5 responsive blocks for an observed cell).
func Table4(opts Options) (*Table4Result, error) {
	nBlocks := opts.blocks(1500)
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.January, 29)
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   nBlocks,
		Seed:     opts.seed() + 9,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	cls := classifyWorld(world, eng, start, end, blockclass.Default(), true)

	cells := map[geo.CellKey]*geo.CellStats{}
	byCont := map[geo.Continent]int{}
	for i, wb := range world {
		st := cells[wb.Place.Cell]
		if st == nil {
			st = &geo.CellStats{Continent: wb.Place.Region.Continent}
			cells[wb.Place.Cell] = st
		}
		if cls[i].responsive {
			st.Responsive++
		}
		if cls[i].sensitive {
			st.ChangeSensitive++
			byCont[wb.Place.Region.Continent]++
		}
	}
	res := &Table4Result{
		Report:      geo.Coverage(cells, 5, 5),
		Cells:       cells,
		ByContinent: byCont,
	}
	// Scale the thresholds by blocks-per-observed-cell relative to the
	// paper's density (5.17M responsive blocks over 2,186 observed cells).
	const paperDensity = 2365.0
	density := 0.0
	nCells := 0
	for _, st := range cells {
		if st.Responsive > 0 {
			density += float64(st.Responsive)
			nCells++
		}
	}
	if nCells > 0 {
		density /= float64(nCells)
	}
	res.ScaledThreshold = int(5*density/paperDensity + 0.5)
	if res.ScaledThreshold < 1 {
		res.ScaledThreshold = 1
	}
	res.ScaledReport = geo.Coverage(cells, res.ScaledThreshold, res.ScaledThreshold)
	return res, nil
}

// String renders the Table 4 accounting.
func (r *Table4Result) String() string {
	rep := r.Report
	t := &table{header: []string{"row", "gridcells", "", "C-S blks-sum", "", "ping-resp. blks-sum", ""}}
	t.add("all", itoa(rep.Cells), "", itoa(rep.CSBlocks), "", itoa(rep.RespBlocks), "100%")
	t.add("under-observed", itoa(rep.UnderObserved), "", "", "", itoa(rep.RespBlocks-rep.RespBlocksObserved), pct(rep.RespBlocks-rep.RespBlocksObserved, rep.RespBlocks))
	t.add("observed", itoa(rep.Observed), "100%", itoa(rep.CSBlocksObserved), "100%", itoa(rep.RespBlocksObserved), "100%")
	t.add("under-represented", itoa(rep.UnderRepresented), pct(rep.UnderRepresented, rep.Observed),
		itoa(rep.CSBlocksObserved-rep.CSBlocksRepresented), pct(rep.CSBlocksObserved-rep.CSBlocksRepresented, rep.CSBlocksObserved),
		itoa(rep.RespBlocksObserved-rep.RespBlocksRepresented), pct(rep.RespBlocksObserved-rep.RespBlocksRepresented, rep.RespBlocksObserved))
	t.add("represented", itoa(rep.Represented), pct(rep.Represented, rep.Observed),
		itoa(rep.CSBlocksRepresented), pct(rep.CSBlocksRepresented, rep.CSBlocksObserved),
		itoa(rep.RespBlocksRepresented), pct(rep.RespBlocksRepresented, rep.RespBlocksObserved))
	sr := r.ScaledReport
	return fmt.Sprintf("Table 4 — geographic coverage (paper: 60%% of cells represented, 98.5%%/99.7%% block-weighted)\n%s"+
		"scale-adjusted thresholds (%d blocks/cell): %.0f%%%% of observed cells represented; "+
		"block-weighted coverage %.1f%%%% of responsive, %.1f%%%% of change-sensitive\n",
		t, r.ScaledThreshold, 100*sr.RepresentedCellFraction(),
		100*sr.RespBlockCoverage(), 100*sr.CSBlockCoverage())
}

// Figure7Result summarizes where change-sensitive blocks are (the paper's
// world map, rendered as per-continent and top-cell counts).
type Figure7Result struct {
	ByContinent map[geo.Continent]int
	TopCells    []Figure7Cell
	// AllCells holds every cell with at least one change-sensitive block,
	// for map rendering.
	AllCells []Figure7Cell
}

// Figure7Cell is one gridcell's change-sensitive count.
type Figure7Cell struct {
	Cell  geo.CellKey
	Count int
}

// Figure7 derives the geographic distribution from a Table 4 run.
func Figure7(opts Options) (*Figure7Result, error) {
	t4, err := Table4(opts)
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{ByContinent: t4.ByContinent}
	keys := sortedKeys(t4.Cells, func(a, b geo.CellKey) bool {
		ca, cb := t4.Cells[a].ChangeSensitive, t4.Cells[b].ChangeSensitive
		if ca != cb {
			return ca > cb
		}
		if a.Lat != b.Lat {
			return a.Lat < b.Lat
		}
		return a.Lon < b.Lon
	})
	for _, k := range keys {
		if t4.Cells[k].ChangeSensitive == 0 {
			continue
		}
		cell := Figure7Cell{Cell: k, Count: t4.Cells[k].ChangeSensitive}
		res.AllCells = append(res.AllCells, cell)
		if len(res.TopCells) < 15 {
			res.TopCells = append(res.TopCells, cell)
		}
	}
	return res, nil
}

// String renders the distribution with a world map.
func (r *Figure7Result) String() string {
	t := &table{header: []string{"continent", "change-sensitive blocks"}}
	for _, c := range geo.Continents() {
		t.add(c.String(), itoa(r.ByContinent[c]))
	}
	t2 := &table{header: []string{"gridcell", "change-sensitive blocks"}}
	for _, c := range r.TopCells {
		t2.add(c.Cell.String(), itoa(c.Count))
	}
	values := map[geo.CellKey]int{}
	for _, c := range r.AllCells {
		values[c.Cell] = c.Count
	}
	return fmt.Sprintf("Figure 7 — where change-sensitive blocks are\n%s\ntop gridcells:\n%s\n%s",
		t, t2, render.WorldMap(values))
}

// Figure14Result is the gridcell-threshold sensitivity study.
type Figure14Result struct {
	Thresholds  []int
	Represented []float64
	Observed    []float64
}

// Figure14 sweeps the represented/observed thresholds 1..max over the
// Table 4 cell stats (Appendix D).
func Figure14(opts Options) (*Figure14Result, error) {
	t4, err := Table4(opts)
	if err != nil {
		return nil, err
	}
	const max = 40
	rep, obs := geo.ThresholdCurve(t4.Cells, max)
	res := &Figure14Result{}
	for th := 1; th <= max; th++ {
		res.Thresholds = append(res.Thresholds, th)
		res.Represented = append(res.Represented, rep[th-1])
		res.Observed = append(res.Observed, obs[th-1])
	}
	return res, nil
}

// String renders selected points of the curves.
func (r *Figure14Result) String() string {
	t := &table{header: []string{"threshold", "frac represented cells", "frac observed cells"}}
	for i, th := range r.Thresholds {
		if th <= 10 || th%5 == 0 {
			t.add(itoa(th), fmt.Sprintf("%.3f", r.Represented[i]), fmt.Sprintf("%.3f", r.Observed[i]))
		}
	}
	return fmt.Sprintf("Figure 14 — sensitivity of coverage to gridcell thresholds\n%s", t)
}
