package experiments

import (
	"strings"
	"testing"
)

// TestSupervisor runs the supervisor acceptance study at reduced scale;
// the experiment itself asserts the contracts (fault-free identity,
// breaker trip and readmission, bounded hedged wall time, exactly-once
// journaling) and returns an error when any is violated.
func TestSupervisor(t *testing.T) {
	if testing.Short() {
		t.Skip("supervisor study runs four world-scale pipelines")
	}
	res, err := Supervisor(Options{Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CleanIdentical || !res.WallBounded || !res.ExactlyOnce {
		t.Fatalf("contract flags not all set:\n%s", res)
	}
	if res.HedgedBlocks == 0 {
		t.Fatalf("no hedges fired:\n%s", res)
	}
	out := res.String()
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("rendering reports a violation:\n%s", out)
	}
}
