package experiments

import (
	"strings"
	"testing"
)

// TestShardFailover exercises the sharded-run acceptance contract at
// reduced scale. ShardFailover itself errors on any contract breach (kill
// never fired, takeover missing, audit unclean, duplicate frames,
// fingerprint divergence, dead-letter mismatch, stall never fenced), so a
// nil error plus the verdict fields is the whole acceptance check.
func TestShardFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several world analyses across worker fleets")
	}
	res, err := ShardFailover(Options{Blocks: 72})
	if err != nil {
		t.Fatalf("shard failover contract broken: %v", err)
	}
	if !res.Identical || !res.StallIdentical {
		t.Fatalf("sharded results diverged:\n%s", res)
	}
	if res.DuplicateFrames != 0 {
		t.Fatalf("crash leg accepted %d duplicate frames:\n%s", res.DuplicateFrames, res)
	}
	if res.StallConflicts != 0 {
		t.Fatalf("stall leg recorded %d conflicts:\n%s", res.StallConflicts, res)
	}
	if !res.DeadLettersExact || res.DeadLetters == 0 {
		t.Fatalf("dead-letter manifest wrong:\n%s", res)
	}
	if res.StallFenced == 0 {
		t.Fatalf("stalled worker was never fenced:\n%s", res)
	}
	if !strings.Contains(res.String(), "IDENTICAL") {
		t.Fatalf("report does not state the verdict:\n%s", res)
	}
}
