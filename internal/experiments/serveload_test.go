package experiments

import (
	"strings"
	"testing"
)

// TestServeLoad exercises the serving-plane acceptance contract at
// reduced scale. ServeLoad itself errors on any breach (a non-200/503
// response, a shed without Retry-After, nothing shed at 10× overload, a
// corrupt publish served or not quarantined), so a nil error plus the
// verdict fields is the whole acceptance check.
func TestServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full analysis plus two load runs")
	}
	res, err := ServeLoad(Options{Blocks: 24})
	if err != nil {
		t.Fatalf("serving contract broken: %v", err)
	}
	if res.Overload.Shed == 0 || res.Overload.OK == 0 {
		t.Fatalf("overload run is vacuous:\n%s", res)
	}
	if res.Quarantined == 0 || !res.ServedLastGood {
		t.Fatalf("corrupt publish was not contained:\n%s", res)
	}
	// Cheap point reads stay bounded even at 10× overload; the bound is
	// generous for CI but a queued (rather than shed) overload blows it.
	if p99 := res.Overload.Classes["cell"].P99ms; p99 > 500 {
		t.Fatalf("cell p99 = %.1fms under overload:\n%s", p99, res)
	}
	if s := res.String(); !strings.Contains(s, "OK") || strings.Contains(s, "VIOLATED") {
		t.Fatalf("report does not state a clean verdict:\n%s", s)
	}
}
