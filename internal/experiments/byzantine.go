package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// ByzantineRow is one (attack, severity) cell of the Byzantine-observer
// sweep: detection accuracy with the integrity firewall armed versus
// disarmed, and whether the firewall caught the attacker.
type ByzantineRow struct {
	// Attack names the lying-observer scenario (see faults.AttackNames).
	Attack string
	// Severity scales the attack's knobs in faults.AttackPlan.
	Severity float64
	// AttackerGated reports whether the firewall excluded the attacking
	// observer's stream from at least one block's merge.
	AttackerGated bool
	// GatedBlocks counts the blocks where the attacker was gated; Reason
	// is the gate most often named in the verdicts.
	GatedBlocks int
	Reason      string
	// HonestGated counts blocks where a non-attacking observer was gated
	// (false accusations; should stay zero).
	HonestGated int
	// TP/FP/FN and Precision/Recall score WFH down-change detections with
	// the firewall armed, Table 5 style.
	TP, FP, FN        int
	Precision, Recall float64
	// RawTP/RawFP/RawFN and RawPrecision/RawRecall score the same attack
	// with the firewall disarmed — what the attacker does unopposed.
	RawTP, RawFP, RawFN     int
	RawPrecision, RawRecall float64
}

// ByzantineResult is the attack × severity sweep of the data-integrity
// firewall.
type ByzantineResult struct {
	Observers int
	// CleanPrecision and CleanRecall score a no-attack run with the
	// firewall armed — the accuracy reference the attacked runs are held
	// to, and (with CleanGated) the false-positive check: an armed
	// firewall on honest streams must gate nothing.
	CleanPrecision, CleanRecall float64
	CleanGated                  int
	Rows                        []ByzantineRow
}

// ByzantineSeverities is the sweep grid.
var ByzantineSeverities = []float64{0.33, 0.66, 1}

// Byzantine sweeps the Byzantine-observer attacks at increasing severity
// over one fixed world and reports how detection accuracy holds up with
// the data-integrity firewall armed. In every attacked run the last
// observer lies — rate-limited positives, duplicate floods, stale
// replays, shifted timestamps, or spoofed positives — while the others
// stay honest. Unlike the Robustness sweep, no breakers or pre-scan
// exclusion run: the firewall's per-block gates and majority merge are
// the only defense, so the sweep isolates their contribution.
func Byzantine(opts Options) (*ByzantineResult, error) {
	return byzantine(opts, ByzantineSeverities)
}

// byzantine runs the sweep over an explicit severity grid; the contract
// test sweeps only full severity to keep its runtime bounded.
func byzantine(opts Options, severities []float64) (*ByzantineResult, error) {
	start, end := q1Window()
	cal := events.Year2020()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(240),
		Seed:     opts.seed() + 29,
		Calendar: cal,
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	armed := cfg
	armed.Integrity = true

	const observers = 4
	attacker := observers - 1
	newEngine := func(plan *faults.Plan) core.Prober {
		inner := &probe.Engine{Observers: probe.StandardObservers(observers), QuarterSeed: opts.seed()}
		if plan == nil {
			return inner
		}
		return &faults.Engine{Inner: inner, Plan: plan}
	}
	score := func(run *core.WorldResult) (tp, fp, fn int) {
		for i := range run.Blocks {
			if a := run.Blocks[i].Analysis; a != nil {
				btp, bfp, bfn := scoreWFH(world[i], a, cal, start, end)
				tp += btp
				fp += bfp
				fn += bfn
			}
		}
		return tp, fp, fn
	}

	res := &ByzantineResult{Observers: observers}
	clean, err := (&core.Pipeline{Config: armed, Engine: newEngine(nil)}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("clean baseline: %w", err)
	}
	res.CleanGated = len(clean.Report.IntegrityVerdicts)
	res.CleanPrecision, res.CleanRecall = prf(score(clean))

	for _, attack := range faults.AttackNames {
		for _, sev := range severities {
			plan, err := faults.AttackPlan(observers, attack, sev, opts.seed()+31)
			if err != nil {
				return nil, err
			}
			run, err := (&core.Pipeline{Config: armed, Engine: newEngine(plan)}).Run(opts.ctx(), world)
			if err != nil {
				return nil, fmt.Errorf("%s severity %.2f: %w", attack, sev, err)
			}
			raw, err := (&core.Pipeline{Config: cfg, Engine: newEngine(plan)}).Run(opts.ctx(), world)
			if err != nil {
				return nil, fmt.Errorf("%s severity %.2f (disarmed): %w", attack, sev, err)
			}
			row := ByzantineRow{Attack: attack, Severity: sev}
			reasons := map[string]int{}
			for _, v := range run.Report.IntegrityVerdicts {
				if v.Observer == attacker {
					row.GatedBlocks++
					reasons[v.Reason]++
				} else {
					row.HonestGated++
				}
			}
			row.AttackerGated = row.GatedBlocks > 0
			for r, n := range reasons {
				if best, ok := reasons[row.Reason]; !ok || n > best || (n == best && r < row.Reason) {
					row.Reason = r
				}
			}
			row.TP, row.FP, row.FN = score(run)
			row.Precision, row.Recall = prf(row.TP, row.FP, row.FN)
			row.RawTP, row.RawFP, row.RawFN = score(raw)
			row.RawPrecision, row.RawRecall = prf(row.RawTP, row.RawFP, row.RawFN)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// String renders the attack × severity firewall table.
func (r *ByzantineResult) String() string {
	t := &table{header: []string{
		"attack", "severity", "attacker gated", "gate", "gated blocks",
		"honest gated", "precision", "recall", "raw precision", "raw recall",
	}}
	for _, row := range r.Rows {
		gated := "NO"
		if row.AttackerGated {
			gated = "yes"
		}
		t.add(
			row.Attack, fmt.Sprintf("%.2f", row.Severity), gated, row.Reason,
			itoa(row.GatedBlocks), itoa(row.HonestGated),
			fmt.Sprintf("%.0f%%", 100*row.Precision),
			fmt.Sprintf("%.0f%%", 100*row.Recall),
			fmt.Sprintf("%.0f%%", 100*row.RawPrecision),
			fmt.Sprintf("%.0f%%", 100*row.RawRecall),
		)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Byzantine — WFH detection accuracy with one lying observer of %d (integrity firewall armed)\n", r.Observers)
	fmt.Fprintf(&b, "clean baseline (no attack): precision %.0f%%, recall %.0f%%, %d streams gated\n%s",
		100*r.CleanPrecision, 100*r.CleanRecall, r.CleanGated, t)
	b.WriteString("the last observer attacks: rate-limited positives, duplicate floods, stale replays,\n" +
		"shifted timestamps, or spoofed positives. \"raw\" columns disarm the firewall. No\n" +
		"breakers or pre-scan exclusion run — the per-block gates and majority merge are the\n" +
		"only defense, and honest observers must never be gated.\n")
	return b.String()
}
