// Observer and collection faults applied by Engine. See doc.go for the
// package-wide injector catalog and determinism guarantees.
package faults

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// hash salts, one per independent fault decision.
const (
	saltGEInit uint64 = 0xfa01
	saltGEStep uint64 = 0xfa02
	saltGELoss uint64 = 0xfa03
	saltDup    uint64 = 0xfa04
	saltSwap   uint64 = 0xfa05
	saltTrunc  uint64 = 0xfa06
	saltSpur   uint64 = 0xfa07
	saltStall  uint64 = 0xfa08
	saltPoison uint64 = 0xfa09
)

// Downtime is a half-open window [Start, End) during which an observer is
// offline and produces no records.
type Downtime struct {
	Start, End int64
}

// GilbertElliott is a two-state bursty-loss channel: the link alternates
// between a good and a bad state with per-round transition probabilities,
// and drops probes with a state-dependent probability. Unlike the smooth
// diurnal probe.LossModel, loss arrives in bursts — the failure mode that
// defeats 1-loss repair, which assumes isolated losses (§2.3).
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-round state transition
	// probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are per-probe loss probabilities in each state.
	LossGood, LossBad float64
}

// lossFunc builds a per-block probe.Observer.ExtraLoss closure. The
// channel state evolves lazily over probing rounds; the closure carries
// state and must be used by a single goroutine for a single block, which
// Engine.CollectInto guarantees by building fresh closures per call.
func (g *GilbertElliott) lossFunc(seed, obs uint64) func(id netsim.BlockID, t int64, addr int) bool {
	bad := false
	started := false
	var lastRound int64
	return func(id netsim.BlockID, t int64, addr int) bool {
		round := t / netsim.RoundSeconds
		if !started {
			started = true
			lastRound = round
			// Draw the initial state from the chain's stationary
			// distribution so short windows are not biased good.
			if denom := g.PGoodToBad + g.PBadToGood; denom > 0 {
				pi := g.PGoodToBad / denom
				bad = netsim.HashUnit(seed, obs, uint64(id), saltGEInit) < pi
			}
		}
		for ; lastRound < round; lastRound++ {
			u := netsim.HashUnit(seed, obs, uint64(id), uint64(lastRound+1), saltGEStep)
			if bad {
				bad = u >= g.PBadToGood
			} else {
				bad = u < g.PGoodToBad
			}
		}
		rate := g.LossGood
		if bad {
			rate = g.LossBad
		}
		return rate > 0 && netsim.HashUnit(seed, obs, uint64(id), uint64(t), uint64(addr), saltGELoss) < rate
	}
}

// ClockSkew shifts an observer's record timestamps: a constant Offset plus
// DriftPerDay seconds of accumulated drift per elapsed day. The shift is
// monotone, so one observer's stream stays internally ordered, but its
// records merge against other observers at the wrong instants and can fall
// off the window edges (where sanitization quarantines them).
type ClockSkew struct {
	// Offset is the constant skew in seconds (positive = fast clock).
	Offset int64
	// DriftPerDay is the additional skew accumulated per elapsed day.
	DriftPerDay float64
}

// apply rewrites timestamps in place; start anchors drift accumulation.
func (c *ClockSkew) apply(start int64, records []probe.Record) {
	for i := range records {
		drift := int64(c.DriftPerDay * float64(records[i].T-start) / float64(netsim.SecondsPerDay))
		records[i].T += c.Offset + drift
	}
}

// Corruption mangles an observer's record stream at batch granularity,
// modeling a collector that crashes and replays, swaps, or loses parts of
// its write buffer.
type Corruption struct {
	// DuplicateProb is the per-batch probability the batch is emitted
	// twice; ReorderProb the probability it is swapped with its
	// predecessor (breaking time order); TruncateProb the probability its
	// second half is lost.
	DuplicateProb, ReorderProb, TruncateProb float64
	// BatchSize is the flush granularity in records (default 128).
	BatchSize int
}

// apply returns the corrupted stream (a fresh slice when any fault fired).
func (c *Corruption) apply(seed, obs, block uint64, records []probe.Record) []probe.Record {
	size := c.BatchSize
	if size <= 0 {
		size = 128
	}
	var batches [][]probe.Record
	dirty := false
	for i, bi := 0, uint64(0); i < len(records); i, bi = i+size, bi+1 {
		b := records[i:min(i+size, len(records))]
		if netsim.HashUnit(seed, obs, block, bi, saltTrunc) < c.TruncateProb {
			b = b[:len(b)/2]
			dirty = true
		}
		batches = append(batches, b)
		if netsim.HashUnit(seed, obs, block, bi, saltDup) < c.DuplicateProb {
			batches = append(batches, b)
			dirty = true
		}
		if len(batches) >= 2 && netsim.HashUnit(seed, obs, block, bi, saltSwap) < c.ReorderProb {
			batches[len(batches)-1], batches[len(batches)-2] = batches[len(batches)-2], batches[len(batches)-1]
			dirty = true
		}
	}
	if !dirty {
		return records
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	out := make([]probe.Record, 0, total)
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// ObserverFaults gathers every fault applied to one observer. The zero
// value injects nothing.
type ObserverFaults struct {
	// Downtimes are windows where the observer is offline.
	Downtimes []Downtime
	// Burst, when non-nil, adds Gilbert–Elliott bursty link loss.
	Burst *GilbertElliott
	// Clock, when non-nil, skews the observer's record timestamps.
	Clock *ClockSkew
	// Corrupt, when non-nil, mangles the observer's record stream.
	Corrupt *Corruption
	// RateLimit, when non-nil, caps positive replies per time window —
	// the observer lies "down" above the cliff (see attacks.go).
	RateLimit *RateLimitCliff
	// DupFlood, when non-nil, re-emits probing rounds several times over.
	DupFlood *DuplicateFlood
	// Replay, when non-nil, re-emits previous rounds' records verbatim.
	Replay *StaleReplay
	// TimeLie, when non-nil, shifts whole rounds out of the window.
	TimeLie *TimestampLie
	// Spoof, when non-nil, forges positives for never-probed addresses.
	Spoof *SpoofPositive
}

// down reports whether the observer is inside any downtime window at t.
func (f *ObserverFaults) down(t int64) bool {
	for _, d := range f.Downtimes {
		if t >= d.Start && t < d.End {
			return true
		}
	}
	return false
}

// SpuriousCollect injects whole-collection outages: for a deterministic
// subset of blocks, the first Attempts collection calls fail outright
// with a transient error (a collector that is rebooting and comes back if
// asked again). The error implements `Transient() bool`, which
// core.IsTransient recognizes, so the pipeline's retry-with-backoff
// clears it; with retries disabled it surfaces as a BlockError.
type SpuriousCollect struct {
	// Prob is the per-block probability the block's collector starts in
	// the failing state.
	Prob float64
	// Attempts is how many collection calls fail before the collector
	// recovers (default 1).
	Attempts int
}

// transientError marks an injected outage retryable without importing
// core (which would cycle through core's tests).
type transientError struct {
	id      netsim.BlockID
	attempt int
}

func (e *transientError) Error() string {
	return fmt.Sprintf("faults: collector outage for block %s (attempt %d)", e.id, e.attempt)
}

// Transient reports the outage clears on retry; core.IsTransient keys on
// this method.
func (e *transientError) Transient() bool { return true }

// Stall delays whole collection calls: for a deterministic subset of
// blocks, the first Attempts calls hang for Delay before delivering
// normal records — a wedged collector that eventually answers. The delay
// honors context cancellation, so a hedged re-dispatch that wins the
// race unwinds the stalled loser immediately.
type Stall struct {
	// Prob is the per-block probability the block's collector stalls.
	Prob float64
	// Delay is how long a stalled call hangs before collecting.
	Delay time.Duration
	// Attempts is how many collection calls stall before the collector
	// recovers (default 1) — a re-dispatched attempt therefore runs
	// clean, which is exactly what hedging bets on.
	Attempts int
	// FromCall suppresses stalls during the engine's first FromCall
	// collection calls (counted across all blocks), so a run's latency
	// baseline forms before the stragglers appear.
	FromCall int
}

// Poison marks a deterministic subset of blocks as poison: every
// collection call for a selected block panics, on every attempt, forever —
// a block whose data tickles a deterministic bug in the collector. Unlike
// Spurious (transient, cleared by retry) or Stall (slow but eventually
// fine), a poison block can never complete: without a dead-letter
// quarantine it burns its retry budget on every resume and stalls a shard
// forever; with one it is recorded and skipped, which is exactly the path
// this injector exists to exercise.
type Poison struct {
	// Prob is the per-block probability the block is poison.
	Prob float64
}

// Selects reports whether the plan seed marks block id as poison; the
// shard-failover experiment uses it to compute the expected dead-letter
// manifest without running anything.
func (p *Poison) Selects(seed uint64, id netsim.BlockID) bool {
	return p != nil && p.Prob > 0 && netsim.HashUnit(seed, uint64(id), saltPoison) < p.Prob
}

// Flap silences one observer over a window of the engine's collection
// calls: from call FromCall (inclusive) to ToCall (exclusive; 0 = never
// ends), the observer's stream is emptied after collection. Counting
// calls instead of simulated time models an observer that degrades
// mid-run, invisible to any pre-scan that sampled it earlier.
type Flap struct {
	// Observer is the engine observer index to silence.
	Observer int
	// FromCall and ToCall bound the outage in collection-call sequence
	// numbers (1-based; ToCall 0 means the observer never recovers).
	FromCall, ToCall int
}

// Plan assigns faults to an engine's observers by index.
type Plan struct {
	// Seed drives all fault randomness, independent of the world seed.
	Seed uint64
	// PerObserver is indexed like the engine's observer list; missing
	// indices are fault-free.
	PerObserver []ObserverFaults
	// Spurious, when non-nil, makes whole collection calls fail
	// transiently for a deterministic subset of blocks.
	Spurious *SpuriousCollect
	// Stall, when non-nil, delays collection for a deterministic subset
	// of blocks.
	Stall *Stall
	// Poison, when non-nil, makes collection panic deterministically for
	// a subset of blocks, on every attempt.
	Poison *Poison
	// Flaps silence observers over windows of collection calls.
	Flaps []Flap
}

// observer returns the faults for index i, or nil when there are none.
func (p *Plan) observer(i int) *ObserverFaults {
	if p == nil || i >= len(p.PerObserver) {
		return nil
	}
	return &p.PerObserver[i]
}

// Engine wraps a probe engine and injects the plan's faults: downtime and
// bursty loss act inside the adaptive probing loop (they change what gets
// probed, exactly as real loss would), while clock skew and stream
// corruption act on the collected records. It implements core.Prober and
// is safe for concurrent CollectInto calls, like the engine it wraps.
type Engine struct {
	Inner *probe.Engine
	Plan  *Plan
	// Clock times Stall delays (default wall clock); tests inject
	// health.NewFake to stall without sleeping.
	Clock health.Clock

	// mu guards attempts and stalls, the per-block counts of collection
	// calls used by the Spurious and Stall faults to act on the first N
	// calls and then recover.
	mu       sync.Mutex
	attempts map[netsim.BlockID]int
	stalls   map[netsim.BlockID]int
	// calls numbers the engine's collection calls across all blocks; the
	// Stall warmup and Flap windows are defined over it.
	calls atomic.Int64
}

// CollectInto probes the block through the fault plan. The bufs contract
// matches probe.Engine.CollectInto; corrupted streams may be replaced by
// fresh slices.
func (e *Engine) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	call := e.calls.Add(1)
	if p := e.planPoison(); p.Selects(e.planSeed(), b.ID) {
		// The panic unwinds into the pipeline's per-block recovery and
		// becomes a core.PanicError; the deterministic message keeps
		// dead-letter manifests byte-identical across workers and runs.
		panic(fmt.Sprintf("faults: poison block %s", b.ID))
	}
	if err := e.stall(ctx, b, call); err != nil {
		return bufs, err
	}
	if err := e.spurious(b); err != nil {
		return bufs, err
	}
	inner := *e.Inner
	inner.Observers = append([]probe.Observer(nil), e.Inner.Observers...)
	for oi := range inner.Observers {
		f := e.Plan.observer(oi)
		if f == nil {
			continue
		}
		o := &inner.Observers[oi]
		if len(f.Downtimes) > 0 {
			faults := f
			o.Down = func(t int64) bool { return faults.down(t) }
		}
		if f.Burst != nil {
			// A fresh closure per call keeps the channel's Markov state
			// private to this block and goroutine.
			o.ExtraLoss = f.Burst.lossFunc(e.planSeed(), uint64(oi))
		}
	}
	bufs, err := inner.CollectInto(ctx, b, start, end, bufs)
	if err != nil {
		return bufs, err
	}
	for oi := range bufs {
		f := e.Plan.observer(oi)
		if f == nil {
			continue
		}
		if f.Clock != nil {
			f.Clock.apply(start, bufs[oi])
		}
		if f.Corrupt != nil {
			bufs[oi] = f.Corrupt.apply(e.planSeed(), uint64(oi), uint64(b.ID), bufs[oi])
		}
		// Data attacks apply after the failure faults: a lying observer
		// lies about whatever its (possibly already degraded) collection
		// produced. RateLimit first (it edits states in place), then the
		// record-adding attacks, then the timestamp lie last so replayed
		// and spoofed records are shifted along with their rounds.
		if f.RateLimit != nil {
			f.RateLimit.apply(bufs[oi])
		}
		if f.Replay != nil {
			bufs[oi] = f.Replay.apply(e.planSeed(), uint64(oi), uint64(b.ID), bufs[oi])
		}
		if f.Spoof != nil {
			bufs[oi] = f.Spoof.apply(e.planSeed(), uint64(oi), uint64(b.ID), bufs[oi])
		}
		if f.DupFlood != nil {
			bufs[oi] = f.DupFlood.apply(e.planSeed(), uint64(oi), uint64(b.ID), bufs[oi])
		}
		if f.TimeLie != nil {
			f.TimeLie.apply(e.planSeed(), uint64(oi), uint64(b.ID), bufs[oi])
		}
	}
	if e.Plan != nil {
		for _, fl := range e.Plan.Flaps {
			if fl.Observer < 0 || fl.Observer >= len(bufs) {
				continue
			}
			if call >= int64(fl.FromCall) && (fl.ToCall <= 0 || call < int64(fl.ToCall)) {
				bufs[fl.Observer] = bufs[fl.Observer][:0]
			}
		}
	}
	return bufs, nil
}

// stall hangs b's collection call when the Stall fault selects it,
// returning early only if ctx dies mid-delay.
func (e *Engine) stall(ctx context.Context, b *netsim.Block, call int64) error {
	s := e.planStall()
	if s == nil || s.Prob <= 0 || s.Delay <= 0 || call <= int64(s.FromCall) {
		return nil
	}
	if netsim.HashUnit(e.planSeed(), uint64(b.ID), saltStall) >= s.Prob {
		return nil
	}
	limit := s.Attempts
	if limit <= 0 {
		limit = 1
	}
	e.mu.Lock()
	if e.stalls == nil {
		e.stalls = map[netsim.BlockID]int{}
	}
	e.stalls[b.ID]++
	stalled := e.stalls[b.ID] <= limit
	e.mu.Unlock()
	if !stalled {
		return nil
	}
	clock := e.Clock
	if clock == nil {
		clock = health.System
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-clock.After(s.Delay):
		return nil
	}
}

// spurious returns the injected transient outage for b's next collection
// attempt, or nil when the block is unaffected or has recovered.
func (e *Engine) spurious(b *netsim.Block) error {
	s := e.planSpurious()
	if s == nil || s.Prob <= 0 {
		return nil
	}
	if netsim.HashUnit(e.planSeed(), uint64(b.ID), saltSpur) >= s.Prob {
		return nil
	}
	limit := s.Attempts
	if limit <= 0 {
		limit = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.attempts == nil {
		e.attempts = map[netsim.BlockID]int{}
	}
	e.attempts[b.ID]++
	if n := e.attempts[b.ID]; n <= limit {
		return &transientError{id: b.ID, attempt: n}
	}
	return nil
}

func (e *Engine) planSpurious() *SpuriousCollect {
	if e.Plan == nil {
		return nil
	}
	return e.Plan.Spurious
}

func (e *Engine) planStall() *Stall {
	if e.Plan == nil {
		return nil
	}
	return e.Plan.Stall
}

func (e *Engine) planPoison() *Poison {
	if e.Plan == nil {
		return nil
	}
	return e.Plan.Poison
}

func (e *Engine) planSeed() uint64 {
	if e.Plan == nil {
		return 0
	}
	return e.Plan.Seed
}

// DefaultPlan builds the severity-scaled composite plan used by the
// robustness experiment and its regression tests. Severity 0 is
// fault-free; severity 1 combines every pathology the paper reports:
//
//   - the last observer breaks like sites c and g: heavy erratic loss
//     (even in the channel's good state) plus a multi-week downtime
//     starting two weeks into the window;
//   - every other observer suffers mild bursty link loss;
//   - the first observer's clock runs fast and drifts;
//   - one observer's record pipeline duplicates, reorders, and truncates
//     batches.
//
// start anchors the downtime and drift; intermediate severities
// interpolate every knob linearly.
func DefaultPlan(observers int, severity float64, start int64, seed uint64) *Plan {
	p := &Plan{Seed: seed}
	if severity <= 0 || observers <= 0 {
		return p
	}
	if severity > 1 {
		severity = 1
	}
	p.PerObserver = make([]ObserverFaults, observers)
	for i := range p.PerObserver {
		p.PerObserver[i].Burst = &GilbertElliott{
			PGoodToBad: 0.02 * severity,
			PBadToGood: 0.25,
			LossBad:    0.7 * severity,
		}
	}
	broken := &p.PerObserver[observers-1]
	broken.Burst = &GilbertElliott{
		PGoodToBad: 0.10 * severity,
		PBadToGood: 0.15,
		LossGood:   0.4 * severity,
		LossBad:    0.9 * severity,
	}
	downStart := start + 14*netsim.SecondsPerDay
	broken.Downtimes = []Downtime{{
		Start: downStart,
		End:   downStart + int64(severity*14*float64(netsim.SecondsPerDay)),
	}}
	if observers > 1 {
		p.PerObserver[0].Clock = &ClockSkew{
			Offset:      int64(severity * 1800),
			DriftPerDay: severity * 120,
		}
		p.PerObserver[1].Corrupt = &Corruption{
			DuplicateProb: 0.15 * severity,
			ReorderProb:   0.10 * severity,
			TruncateProb:  0.10 * severity,
		}
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
