package faults

// Clock models a machine whose wall clock is wrong: a constant offset, a
// rate error (broken NTP slewing), and scheduled step changes (an NTP slam
// or a VM migration). It implements health.Clock, so anything that takes
// one — the shard lease ledger, the pipeline watchdog, the stream daemon —
// can be run against a skewed view of time while the rest of the test
// drives a shared base clock. This is the wall-time counterpart of
// ClockSkew, which skews record timestamps inside the data plane.

import (
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/health"
)

// Jump is a step change in a skewed clock's wall time, applied once the
// base clock has run After past the clock's first use.
type Jump struct {
	After time.Duration
	Delta time.Duration
}

// Clock is a skewed health.Clock. The zero value reads the system clock
// unskewed; set the fields before first use and do not change them after.
type Clock struct {
	// Base supplies real time (default health.System; tests use
	// health.Fake so skew scenarios are deterministic).
	Base health.Clock
	// Offset is added to every reading.
	Offset time.Duration
	// Drift is the rate error in seconds gained per base second (1e-4 ≈
	// 8.6 s/day fast; negative runs slow). It accrues from first use.
	Drift float64
	// Jumps are step changes applied in addition to Offset and Drift.
	Jumps []Jump

	mu       sync.Mutex
	anchor   time.Time
	anchored bool
}

func (c *Clock) base() health.Clock {
	if c.Base != nil {
		return c.Base
	}
	return health.System
}

// Now returns the skewed wall time.
func (c *Clock) Now() time.Time {
	now := c.base().Now()
	c.mu.Lock()
	if !c.anchored {
		c.anchor, c.anchored = now, true
	}
	elapsed := now.Sub(c.anchor)
	c.mu.Unlock()
	skew := c.Offset + time.Duration(float64(elapsed)*c.Drift)
	for _, j := range c.Jumps {
		if elapsed >= j.After {
			skew += j.Delta
		}
	}
	return now.Add(skew)
}

// After returns a timer channel. Like real timers, it runs on the
// monotonic clock: wall offset and jumps do not move in-flight timers,
// but a rate error does — a fast clock's d-second timer fires after only
// d/(1+Drift) base seconds.
func (c *Clock) After(d time.Duration) <-chan time.Time {
	if c.Drift != 0 && d > 0 {
		d = time.Duration(float64(d) / (1 + c.Drift))
	}
	return c.base().After(d)
}
