package faults

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSlowReaderAtDelaysAndDelegates(t *testing.T) {
	inner := strings.NewReader("hello columnar world")
	s := &SlowReaderAt{R: inner, Delay: 30 * time.Millisecond}
	buf := make([]byte, 5)
	t0 := time.Now()
	n, err := s.ReadAt(buf, 6)
	if err != nil || string(buf[:n]) != "colum" {
		t.Fatalf("ReadAt = %q, %v", buf[:n], err)
	}
	if el := time.Since(t0); el < 30*time.Millisecond {
		t.Errorf("read returned after %v, want >= 30ms stall", el)
	}
	if s.Reads() != 1 {
		t.Errorf("Reads = %d", s.Reads())
	}
}

func TestSlowReaderAtContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &SlowReaderAt{R: strings.NewReader("x"), Delay: time.Hour, Ctx: ctx}
	done := make(chan error, 1)
	go func() {
		_, err := s.ReadAt(make([]byte, 1), 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled stall did not abort")
	}
}

func TestSlowReaderAtZeroDelay(t *testing.T) {
	s := &SlowReaderAt{R: strings.NewReader("ab")}
	buf := make([]byte, 2)
	if n, err := s.ReadAt(buf, 0); err != nil || n != 2 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
}
