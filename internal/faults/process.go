package faults

// Process-level injectors: where faults.Engine mangles the measurement
// plane, these break the worker process itself — the failure modes a
// multi-process sharded run must survive. WorkerCrash is a deterministic
// stand-in for kill -9 arriving mid-run; LeaseStall models a worker that
// keeps computing but stops renewing its lease (a long GC pause, a
// wedged heartbeat thread), which is precisely the scenario monotonic
// fencing tokens exist for.

import (
	"context"
	"sync"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// Collector is the prober surface the process injectors wrap. It matches
// core.Prober structurally, so the wrappers drop into the pipeline without
// this package importing core (which would cycle through core's tests).
type Collector interface {
	CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error)
}

// WorkerCrash cancels a run's context after a budget of completed
// collections — kill -9 as the pipeline experiences it: the process stops
// mid-run without releasing its leases, closing its journals, or writing
// any farewell. Everything downstream (lease expiry, takeover by another
// worker, journal stitching at merge) must cope with exactly this.
type WorkerCrash struct {
	// Inner is the wrapped prober.
	Inner Collector
	// Kill is invoked once, after AfterCollections collections complete —
	// typically a context.CancelFunc covering the worker's whole run.
	Kill func()
	// AfterCollections is the number of completed collections to survive.
	AfterCollections int

	mu   sync.Mutex
	done int
}

// CollectInto forwards to the wrapped prober, counting completions and
// firing Kill when the budget is spent.
func (w *WorkerCrash) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	bufs, err := w.Inner.CollectInto(ctx, b, start, end, bufs)
	if err != nil {
		return bufs, err
	}
	w.mu.Lock()
	w.done++
	if w.done == w.AfterCollections {
		w.Kill()
	}
	w.mu.Unlock()
	return bufs, nil
}

// LeaseStall suppresses a worker's lease renewals after the first
// AllowRenewals, so the lease expires from the ledger's point of view
// while the worker keeps running and writing. A second worker then claims
// the shard under a higher fencing token, and the stalled worker's late
// journal appends must be rejected. Install it as a shard worker's
// RenewGate.
type LeaseStall struct {
	// AllowRenewals is how many renewals succeed before the stall.
	AllowRenewals int

	mu    sync.Mutex
	count int
}

// Allow reports whether the next renewal may proceed.
func (s *LeaseStall) Allow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	return s.count <= s.AllowRenewals
}
