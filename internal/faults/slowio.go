package faults

// SlowReaderAt models a stalling disk: every ReadAt blocks for a fixed
// delay (or until a context is cancelled) before delegating. The serve
// chaos tests wrap a snapshot's backing file with one to prove that a
// request whose deadline expires inside a disk read degrades into a
// retryable shed instead of wedging an admission slot.

import (
	"context"
	"io"
	"sync/atomic"
	"time"
)

// SlowReaderAt delays every ReadAt by Delay before delegating to R.
type SlowReaderAt struct {
	R io.ReaderAt
	// Delay is how long each ReadAt stalls before touching R.
	Delay time.Duration
	// Ctx, when non-nil, aborts in-flight stalls early with the context's
	// error — so tests can release stalled readers without waiting out
	// the full delay.
	Ctx context.Context

	reads atomic.Int64
}

// ReadAt stalls, then reads. A cancelled Ctx cuts the stall short and
// surfaces the context error as the read error.
func (s *SlowReaderAt) ReadAt(p []byte, off int64) (int, error) {
	s.reads.Add(1)
	if s.Delay > 0 {
		t := time.NewTimer(s.Delay)
		defer t.Stop()
		if s.Ctx != nil {
			select {
			case <-t.C:
			case <-s.Ctx.Done():
				return 0, s.Ctx.Err()
			}
		} else {
			<-t.C
		}
	}
	return s.R.ReadAt(p, off)
}

// Reads reports how many ReadAt calls arrived (including aborted ones).
func (s *SlowReaderAt) Reads() int64 { return s.reads.Load() }
