package faults

import (
	"context"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

var jan6 = netsim.Date(2020, time.January, 6)

func newBlock(t *testing.T, spec netsim.Spec) *netsim.Block {
	t.Helper()
	b, err := netsim.NewBlock(42, 1234, spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func collect(t *testing.T, e *Engine, b *netsim.Block, start, end int64) [][]probe.Record {
	t.Helper()
	bufs, err := e.CollectInto(context.Background(), b, start, end, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bufs
}

func TestNilPlanPassesThrough(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	inner := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	want, err := inner.Collect(b, jan6, jan6+12*3600)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, &Engine{Inner: inner}, b, jan6, jan6+12*3600)
	if len(got) != len(want) {
		t.Fatalf("stream count %d != %d", len(got), len(want))
	}
	for oi := range got {
		if len(got[oi]) != len(want[oi]) {
			t.Fatalf("observer %d: %d records != %d", oi, len(got[oi]), len(want[oi]))
		}
		for i := range got[oi] {
			if got[oi][i] != want[oi][i] {
				t.Fatalf("observer %d record %d differs", oi, i)
			}
		}
	}
}

func TestDowntimeSilencesWindow(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	inner := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	plan := &Plan{Seed: 1, PerObserver: []ObserverFaults{
		{Downtimes: []Downtime{{Start: jan6 + 3*3600, End: jan6 + 9*3600}}},
	}}
	bufs := collect(t, &Engine{Inner: inner, Plan: plan}, b, jan6, jan6+12*3600)
	for _, r := range bufs[0] {
		if r.T >= jan6+3*3600 && r.T < jan6+9*3600 {
			t.Fatalf("record at %d inside downtime", r.T)
		}
	}
	if len(bufs[0]) == 0 {
		t.Fatal("observer should still probe outside downtime")
	}
	inWindow := 0
	for _, r := range bufs[1] {
		if r.T >= jan6+3*3600 && r.T < jan6+9*3600 {
			inWindow++
		}
	}
	if inWindow == 0 {
		t.Fatal("unfaulted observer must keep probing through the window")
	}
}

func TestBurstLossLowersReplyRateInBursts(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 30})
	inner := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 7}
	inner.Observers[0].Extra = 4 // sample past the first positive so rates are comparable
	clean, err := inner.Collect(b, jan6, jan6+7*netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Seed: 3, PerObserver: []ObserverFaults{
		{Burst: &GilbertElliott{PGoodToBad: 0.05, PBadToGood: 0.2, LossBad: 0.9}},
	}}
	lossy := collect(t, &Engine{Inner: inner, Plan: plan}, b, jan6, jan6+7*netsim.SecondsPerDay)
	cleanRate := reconstruct.MeanReplyRate(clean[0])
	lossyRate := reconstruct.MeanReplyRate(lossy[0])
	if lossyRate >= cleanRate {
		t.Fatalf("bursty loss did not lower reply rate: %.3f >= %.3f", lossyRate, cleanRate)
	}
	// Burstiness: losses cluster. Compare the variance of per-round loss
	// against what independent loss of the same mean would produce — a
	// crude dispersion check: count rounds that are entirely lost.
	lostRounds, rounds := 0, 0
	var curT int64 = -1
	allLost := false
	flush := func() {
		if curT >= 0 {
			rounds++
			if allLost {
				lostRounds++
			}
		}
	}
	for _, r := range lossy[0] {
		if r.T != curT {
			flush()
			curT = r.T
			allLost = true
		}
		if r.Up {
			allLost = false
		}
	}
	flush()
	if lostRounds == 0 {
		t.Error("expected some fully lost rounds under bursty loss")
	}
	_ = rounds
}

func TestGilbertElliottDeterministic(t *testing.T) {
	g := &GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8, LossGood: 0.05}
	a := g.lossFunc(9, 1)
	c := g.lossFunc(9, 1)
	for r := int64(0); r < 200; r++ {
		tm := jan6 + r*netsim.RoundSeconds
		if a(5, tm, 17) != c(5, tm, 17) {
			t.Fatalf("loss decision diverged at round %d", r)
		}
	}
}

func TestClockSkewShiftsMonotonically(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	inner := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 7}
	clean, err := inner.Collect(b, jan6, jan6+2*netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Seed: 1, PerObserver: []ObserverFaults{
		{Clock: &ClockSkew{Offset: 600, DriftPerDay: 120}},
	}}
	skewed := collect(t, &Engine{Inner: inner, Plan: plan}, b, jan6, jan6+2*netsim.SecondsPerDay)
	if len(skewed[0]) != len(clean[0]) {
		t.Fatalf("skew must not add or drop records: %d != %d", len(skewed[0]), len(clean[0]))
	}
	for i := range skewed[0] {
		shift := skewed[0][i].T - clean[0][i].T
		if shift < 600 {
			t.Fatalf("record %d shifted by %d < offset", i, shift)
		}
		if i > 0 && skewed[0][i].T < skewed[0][i-1].T {
			t.Fatal("skewed stream lost time order")
		}
	}
	last := len(skewed[0]) - 1
	if lastShift := skewed[0][last].T - clean[0][last].T; lastShift < 600+100 {
		t.Errorf("drift did not accumulate: final shift %d", lastShift)
	}
}

func TestCorruptionThenSanitizeRestoresReconstruction(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 40, AlwaysOn: 5})
	inner := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 7}
	end := jan6 + 3*netsim.SecondsPerDay
	clean, err := inner.Collect(b, jan6, end)
	if err != nil {
		t.Fatal(err)
	}
	// Duplication and reordering only: sanitization recovers the exact
	// information content (truncation genuinely loses data).
	plan := &Plan{Seed: 5, PerObserver: []ObserverFaults{
		{Corrupt: &Corruption{DuplicateProb: 0.5, ReorderProb: 0.5, BatchSize: 32}},
	}}
	dirty := collect(t, &Engine{Inner: inner, Plan: plan}, b, jan6, end)
	if len(dirty[0]) <= len(clean[0]) {
		t.Fatalf("expected duplicated records: %d <= %d", len(dirty[0]), len(clean[0]))
	}
	san, rep := reconstruct.Sanitize(dirty[0], jan6, end)
	if rep.Duplicates == 0 || rep.Reordered == 0 {
		t.Fatalf("sanitize saw no corruption: %+v", rep)
	}
	eb := b.EverActive()
	want, err := reconstruct.Reconstruct(clean[0], eb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reconstruct.Reconstruct(san, eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Times) != len(want.Times) {
		t.Fatalf("series length %d != %d", len(got.Times), len(want.Times))
	}
	for i := range got.Times {
		if got.Times[i] != want.Times[i] || got.Counts[i] != want.Counts[i] {
			t.Fatalf("series diverges at %d: (%d,%v) != (%d,%v)",
				i, got.Times[i], got.Counts[i], want.Times[i], want.Counts[i])
		}
	}
}

func TestCorruptionTruncationDropsRecords(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	inner := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 7}
	end := jan6 + 2*netsim.SecondsPerDay
	clean, err := inner.Collect(b, jan6, end)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Seed: 5, PerObserver: []ObserverFaults{
		{Corrupt: &Corruption{TruncateProb: 1, BatchSize: 16}},
	}}
	dirty := collect(t, &Engine{Inner: inner, Plan: plan}, b, jan6, end)
	if len(dirty[0]) >= len(clean[0]) {
		t.Fatalf("truncation dropped nothing: %d >= %d", len(dirty[0]), len(clean[0]))
	}
}

func TestDefaultPlanSeverityScaling(t *testing.T) {
	if p := DefaultPlan(4, 0, jan6, 1); len(p.PerObserver) != 0 {
		t.Fatal("severity 0 must be fault-free")
	}
	p := DefaultPlan(4, 1, jan6, 1)
	if len(p.PerObserver) != 4 {
		t.Fatalf("expected 4 observer fault sets, got %d", len(p.PerObserver))
	}
	broken := p.PerObserver[3]
	if len(broken.Downtimes) == 0 {
		t.Fatal("severity 1 must include a downtime on the last observer")
	}
	if dur := broken.Downtimes[0].End - broken.Downtimes[0].Start; dur < 7*netsim.SecondsPerDay {
		t.Fatalf("severity-1 downtime too short: %d", dur)
	}
	half := DefaultPlan(4, 0.5, jan6, 1)
	if hd, fd := half.PerObserver[3].Downtimes[0], broken.Downtimes[0]; hd.End-hd.Start >= fd.End-fd.Start {
		t.Fatal("downtime must scale with severity")
	}
	if half.PerObserver[0].Clock == nil || half.PerObserver[1].Corrupt == nil {
		t.Fatal("plan must include clock skew and corruption")
	}
	if hb, fb := half.PerObserver[2].Burst, p.PerObserver[2].Burst; hb.LossBad >= fb.LossBad {
		t.Fatal("burst loss must scale with severity")
	}
}

func TestEngineDeterministicAcrossCalls(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 30, AlwaysOn: 10})
	inner := &probe.Engine{Observers: probe.StandardObservers(3), QuarterSeed: 7}
	plan := DefaultPlan(3, 0.8, jan6, 11)
	e := &Engine{Inner: inner, Plan: plan}
	end := jan6 + 5*netsim.SecondsPerDay
	a := collect(t, e, b, jan6, end)
	c := collect(t, e, b, jan6, end)
	for oi := range a {
		if len(a[oi]) != len(c[oi]) {
			t.Fatalf("observer %d: run lengths differ %d != %d", oi, len(a[oi]), len(c[oi]))
		}
		for i := range a[oi] {
			if a[oi][i] != c[oi][i] {
				t.Fatalf("observer %d record %d differs across identical runs", oi, i)
			}
		}
	}
}
