package faults

// The filesystem injector's own contract: deterministic 1-based
// counters, ENOSPC/EIO errnos that survive wrapping, short writes that
// leave the prefix behind, and an un-budgeted Truncate so rollback works
// on a full disk.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFSWriteBudget(t *testing.T) {
	dir := t.TempDir()
	fsys := &FS{Plan: FSPlan{WriteBudget: 10}}
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.Write([]byte("1234567")); n != 7 || err != nil {
		t.Fatalf("write inside budget: %d, %v", n, err)
	}
	n, err := f.Write([]byte("abcdefg"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("budget overrun errno: %v", err)
	}
	if n != 3 {
		t.Fatalf("overrun wrote %d bytes, want the 3 that fit", n)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("exhausted budget admitted a write: %v", err)
	}
	if fsys.Written() != 10 {
		t.Errorf("Written = %d, want the whole budget", fsys.Written())
	}
	if fsys.Injected() < 2 {
		t.Errorf("Injected = %d, want both refused writes", fsys.Injected())
	}
	// Rollback must still work on the "full disk": Truncate is
	// deliberately un-budgeted.
	if err := f.Truncate(0); err != nil {
		t.Errorf("truncate under exhausted budget: %v", err)
	}
}

func TestFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := &FS{Plan: FSPlan{ShortWriteAt: 2}}
	path := filepath.Join(dir, "x")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("aa")); n != 2 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write errno: %v", err)
	}
	if n <= 0 || n >= 4 {
		t.Fatalf("torn write wrote %d of 4 bytes; want a strict prefix", n)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2+n {
		t.Errorf("file holds %d bytes, want the intact prefix %d", len(data), 2+n)
	}
}

func TestFSFailSyncAndRename(t *testing.T) {
	dir := t.TempDir()
	fsys := &FS{Plan: FSPlan{FailSyncAt: 1, FailRenameAt: 1}}
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first sync: %v, want injected EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync should pass: %v", err)
	}
	f.Close()
	if err := fsys.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first rename: %v, want injected EIO", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x")); err != nil {
		t.Fatalf("refused rename moved the file: %v", err)
	}
	if err := fsys.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y")); err != nil {
		t.Fatalf("second rename should pass: %v", err)
	}
}
