package faults

// Byzantine data attacks: observers that lie rather than fail. Each
// injector rewrites one observer's collected record stream into
// well-formed but wrong data — the adversaries internal/integrity's
// firewall gates on. All decisions are deterministic for a fixed plan
// seed (see doc.go); record streams are grouped into equal-timestamp
// runs (one probing round each) and decisions are drawn per run.

import (
	"fmt"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// hash salts for the attack injectors, continuing the faults.go series.
const (
	saltDupFlood uint64 = 0xfa0a
	saltReplay   uint64 = 0xfa0b
	saltTimeLie  uint64 = 0xfa0c
	saltSpoof    uint64 = 0xfa0d
)

// RateLimitCliff models ICMP rate limiting at the observer or its
// upstream: positive replies are capped per aligned time window, and
// positives above the cap are reported as non-responsive. The carved-out
// positives track the block's busiest hours, so the stream grows fake
// diurnal dips that masquerade as activity changes (the Covid-WFH tech
// report's rate-limiting artifact). Entirely deterministic — no seed is
// consulted; the cliff is a function of the stream itself.
type RateLimitCliff struct {
	// Window is the cap's accounting window in seconds, aligned to the
	// epoch (default 3600 — per-hour caps, the common router default).
	Window int64
	// MaxUp is how many positive replies survive per window; every
	// further positive is flipped to down. Zero caps them all.
	MaxUp int
}

// apply flips positives above the cap in place.
func (a *RateLimitCliff) apply(records []probe.Record) {
	win := a.Window
	if win <= 0 {
		win = 3600
	}
	started := false
	var cur int64
	ups := 0
	for i := range records {
		if !records[i].Up {
			continue
		}
		w := records[i].T / win
		if !started || w != cur {
			started, cur, ups = true, w, 0
		}
		if ups >= a.MaxUp {
			records[i].Up = false
			continue
		}
		ups++
	}
}

// DuplicateFlood re-emits whole probing rounds several times over: a
// selected equal-timestamp run appears Copies extra times, inflating
// duplicate (time, addr) observations — a collector replaying its send
// queue, or a middlebox duplicating replies.
type DuplicateFlood struct {
	// Prob is the per-round probability the round is flooded.
	Prob float64
	// Copies is how many extra copies of the round are emitted
	// (default 3).
	Copies int
}

// apply returns the flooded stream (a fresh slice when any round fired).
func (a *DuplicateFlood) apply(seed, obs, block uint64, records []probe.Record) []probe.Record {
	copies := a.Copies
	if copies <= 0 {
		copies = 3
	}
	var out []probe.Record
	dirty := false
	for ri, i := uint64(0), 0; i < len(records); ri++ {
		j := i + 1
		for j < len(records) && records[j].T == records[i].T {
			j++
		}
		run := records[i:j]
		if netsim.HashUnit(seed, obs, block, ri, saltDupFlood) < a.Prob {
			if !dirty {
				out = append(out, records[:i]...)
				dirty = true
			}
			for c := 0; c <= copies; c++ {
				out = append(out, run...)
			}
		} else if dirty {
			out = append(out, run...)
		}
		i = j
	}
	if !dirty {
		return records
	}
	return out
}

// StaleReplay re-emits a previous round's records: after a selected
// round, the observer appends a verbatim copy of the round before it —
// original timestamps included — so stale observations re-enter the
// stream out of order and, in a streaming round, outside the round's
// admission window.
type StaleReplay struct {
	// Prob is the per-round probability the previous round is replayed
	// after it.
	Prob float64
}

// apply returns the stream with replays appended (a fresh slice when any
// round fired).
func (a *StaleReplay) apply(seed, obs, block uint64, records []probe.Record) []probe.Record {
	var out []probe.Record
	var prev []probe.Record
	dirty := false
	for ri, i := uint64(0), 0; i < len(records); ri++ {
		j := i + 1
		for j < len(records) && records[j].T == records[i].T {
			j++
		}
		run := records[i:j]
		if prev != nil && netsim.HashUnit(seed, obs, block, ri, saltReplay) < a.Prob {
			if !dirty {
				out = append(out, records[:j]...)
				dirty = true
			} else {
				out = append(out, run...)
			}
			out = append(out, prev...)
		} else if dirty {
			out = append(out, run...)
		}
		prev = run
		i = j
	}
	if !dirty {
		return records
	}
	return out
}

// TimestampLie shifts whole rounds far out of the collection window: a
// selected round's timestamps move by Shift seconds, misplacing its
// observations in time — a collector with a corrupted clock serializing
// garbage epochs.
type TimestampLie struct {
	// Prob is the per-round probability the round is shifted.
	Prob float64
	// Shift is the displacement in seconds (default +90 days, far
	// outside any analysis window).
	Shift int64
}

// apply shifts selected rounds in place.
func (a *TimestampLie) apply(seed, obs, block uint64, records []probe.Record) {
	shift := a.Shift
	if shift == 0 {
		shift = 90 * netsim.SecondsPerDay
	}
	for ri, i := uint64(0), 0; i < len(records); ri++ {
		j := i + 1
		for j < len(records) && records[j].T == records[i].T {
			j++
		}
		if netsim.HashUnit(seed, obs, block, ri, saltTimeLie) < a.Prob {
			for k := i; k < j; k++ {
				records[k].T += shift
			}
		}
		i = j
	}
}

// SpoofPositive forges positive replies for addresses the round never
// probed: each round gains PerRound fabricated up-records drawn from the
// addresses absent from it. Most land outside the block's target list
// E(b) (tripping the integrity firewall's membership gate); the rest
// claim activity for real addresses no probe confirmed.
type SpoofPositive struct {
	// PerRound is how many positives are forged per round (default 4).
	PerRound int
}

// apply returns the stream with forged records appended to every round.
func (a *SpoofPositive) apply(seed, obs, block uint64, records []probe.Record) []probe.Record {
	per := a.PerRound
	if per <= 0 {
		per = 4
	}
	if len(records) == 0 {
		return records
	}
	out := make([]probe.Record, 0, len(records)+per*(len(records)/2+1))
	var pool [256]uint8
	for ri, i := uint64(0), 0; i < len(records); ri++ {
		j := i + 1
		for j < len(records) && records[j].T == records[i].T {
			j++
		}
		out = append(out, records[i:j]...)
		var probed [256]bool
		for _, r := range records[i:j] {
			probed[r.Addr] = true
		}
		n := 0
		for addr := 0; addr < 256; addr++ {
			if !probed[addr] {
				pool[n] = uint8(addr)
				n++
			}
		}
		for k := 0; k < per && n > 0; k++ {
			idx := int(netsim.HashUnit(seed, obs, block, ri, uint64(k), saltSpoof) * float64(n))
			if idx >= n {
				idx = n - 1
			}
			out = append(out, probe.Record{T: records[i].T, Addr: pool[idx], Up: true})
		}
		i = j
	}
	return out
}

// AttackNames lists the Byzantine attack scenarios AttackPlan builds, in
// the order the byzantine experiment runs them.
var AttackNames = []string{"ratelimit", "dupflood", "replay", "timelie", "spoof"}

// AttackPlan builds a plan where the last observer mounts the named
// attack at the given severity in (0, 1]; every other observer is honest.
// Severity scales the attack's aggressiveness: the rate-limit cliff
// lowers, flood/replay/shift probabilities and forgery counts rise.
func AttackPlan(observers int, attack string, severity float64, seed uint64) (*Plan, error) {
	if observers < 1 {
		return nil, fmt.Errorf("faults: attack plan needs at least one observer")
	}
	if severity <= 0 {
		severity = 1
	}
	if severity > 1 {
		severity = 1
	}
	p := &Plan{Seed: seed, PerObserver: make([]ObserverFaults, observers)}
	liar := &p.PerObserver[observers-1]
	switch attack {
	case "ratelimit":
		liar.RateLimit = &RateLimitCliff{MaxUp: int((1 - severity) * 3)}
	case "dupflood":
		liar.DupFlood = &DuplicateFlood{Prob: severity, Copies: 1 + int(severity*5)}
	case "replay":
		liar.Replay = &StaleReplay{Prob: severity}
	case "timelie":
		liar.TimeLie = &TimestampLie{Prob: severity}
	case "spoof":
		liar.Spoof = &SpoofPositive{PerRound: 1 + int(severity*5)}
	default:
		return nil, fmt.Errorf("faults: unknown attack %q", attack)
	}
	return p, nil
}
