package faults

// FS is a deterministic filesystem fault injector implementing
// storage.FS. It wraps a real (or already-wrapped) filesystem and fails
// operations on a fixed schedule: a byte budget after which writes
// return ENOSPC (with realistic short-write semantics — the bytes that
// fit are written first), a specific write that is torn short, and
// specific sync or rename calls that fail. The schedule is plain
// counters, so a test that replays the same operations sees the same
// faults; there is no randomness here — seed-driven variation belongs
// in the caller choosing the plan.

import (
	"fmt"
	"sync"
	"syscall"

	"github.com/diurnalnet/diurnal/internal/storage"
	gofs "io/fs"
)

// FSPlan schedules filesystem faults. Zero values disable each fault.
type FSPlan struct {
	// WriteBudget, when positive, is the total number of bytes File.Write
	// calls may persist through this FS before further writes fail with
	// ENOSPC. A write that straddles the budget persists the prefix that
	// fits (a short write) and fails.
	WriteBudget int64
	// ShortWriteAt, when positive, tears the Nth write (1-based) across
	// all files: half the buffer is written, then ENOSPC is returned.
	ShortWriteAt int64
	// FailSyncAt, when positive, fails the Nth sync (1-based), counting
	// File.Sync and SyncDir calls together.
	FailSyncAt int64
	// FailRenameAt, when positive, fails the Nth Rename (1-based).
	FailRenameAt int64
}

// FS implements storage.FS with the faults scheduled by Plan.
type FS struct {
	Inner storage.FS // defaults to storage.OS
	Plan  FSPlan

	mu       sync.Mutex
	written  int64
	writes   int64
	syncs    int64
	renames  int64
	injected int64
}

var _ storage.FS = (*FS)(nil)

func (f *FS) inner() storage.FS {
	if f.Inner == nil {
		return storage.OS
	}
	return f.Inner
}

// Written reports the bytes successfully persisted through this FS.
func (f *FS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Injected reports how many operations this FS has failed on purpose.
func (f *FS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// errInjected wraps syscall errors so failures read as injected in test
// logs while errors.Is(err, syscall.ENOSPC) still holds.
func errInjected(op string, errno syscall.Errno) error {
	return fmt.Errorf("faults: injected %s failure: %w", op, errno)
}

// allowWrite decides the fate of an n-byte write: how many bytes to pass
// through and whether to fail afterwards.
func (f *FS) allowWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.Plan.ShortWriteAt > 0 && f.writes == f.Plan.ShortWriteAt {
		f.injected++
		short := n / 2
		f.written += int64(short)
		return short, errInjected("short write", syscall.ENOSPC)
	}
	if f.Plan.WriteBudget > 0 {
		remain := f.Plan.WriteBudget - f.written
		if remain < int64(n) {
			f.injected++
			if remain < 0 {
				remain = 0
			}
			f.written += remain
			return int(remain), errInjected("write (budget exhausted)", syscall.ENOSPC)
		}
	}
	f.written += int64(n)
	return n, nil
}

func (f *FS) allowSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.Plan.FailSyncAt > 0 && f.syncs == f.Plan.FailSyncAt {
		f.injected++
		return errInjected("fsync", syscall.EIO)
	}
	return nil
}

func (f *FS) OpenFile(name string, flag int, perm gofs.FileMode) (storage.File, error) {
	file, err := f.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (storage.File, error) {
	file, err := f.inner().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	fail := f.Plan.FailRenameAt > 0 && f.renames == f.Plan.FailRenameAt
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		return errInjected("rename", syscall.EIO)
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.inner().Remove(name) }

func (f *FS) MkdirAll(path string, perm gofs.FileMode) error {
	return f.inner().MkdirAll(path, perm)
}

func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner().ReadFile(name) }

func (f *FS) ReadDir(name string) ([]gofs.DirEntry, error) { return f.inner().ReadDir(name) }

func (f *FS) Stat(name string) (gofs.FileInfo, error) { return f.inner().Stat(name) }

func (f *FS) SyncDir(dir string) error {
	if err := f.allowSync(); err != nil {
		return err
	}
	return f.inner().SyncDir(dir)
}

// faultFile intercepts the write/sync path of one open file.
type faultFile struct {
	storage.File
	fs *FS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allowed, ferr := ff.fs.allowWrite(len(p))
	if allowed > 0 {
		n, err := ff.File.Write(p[:allowed])
		if err != nil {
			return n, err
		}
		if ferr != nil {
			return n, ferr
		}
		return n, nil
	}
	if ferr != nil {
		return 0, ferr
	}
	return ff.File.Write(p[:0])
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.allowSync(); err != nil {
		return err
	}
	return ff.File.Sync()
}
