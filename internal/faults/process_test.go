package faults

import (
	"context"
	"testing"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// TestPoisonDeterministic asserts the poison injector panics for exactly
// the blocks Selects reports, with a byte-identical message on every
// attempt — the property the dead-letter manifest's exactly-once contract
// rests on.
func TestPoisonDeterministic(t *testing.T) {
	eng := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	poison := &Poison{Prob: 0.3}
	faulty := &Engine{Inner: eng, Plan: &Plan{Seed: 99, Poison: poison}}
	b, err := netsim.NewBlock(0x1234, 5, netsim.Spec{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	collect := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		_, err := faulty.CollectInto(context.Background(), b, jan6, jan6+3600, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ""
	}
	first := collect()
	if poison.Selects(99, b.ID) != (first != "") {
		t.Fatalf("Selects=%v but collection panic=%q", poison.Selects(99, b.ID), first)
	}
	for i := 0; i < 3; i++ {
		if got := collect(); got != first {
			t.Fatalf("attempt %d panicked %q, first attempt %q", i+2, got, first)
		}
	}
	// A poison probability of 1 must select every block.
	all := &Poison{Prob: 1}
	if !all.Selects(99, b.ID) {
		t.Fatal("Prob=1 did not select the block")
	}
	if (&Poison{}).Selects(99, b.ID) {
		t.Fatal("zero-value poison selected a block")
	}
}

// TestWorkerCrashFiresOnce asserts the kill fires exactly once, after the
// configured number of completed collections.
func TestWorkerCrashFiresOnce(t *testing.T) {
	eng := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 7}
	kills := 0
	crash := &WorkerCrash{Inner: eng, Kill: func() { kills++ }, AfterCollections: 3}
	b, err := netsim.NewBlock(0x77, 5, netsim.Spec{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := crash.CollectInto(context.Background(), b, jan6, jan6+3600, nil); err != nil {
			t.Fatal(err)
		}
		want := 0
		if i >= 2 {
			want = 1
		}
		if kills != want {
			t.Fatalf("after %d collections: %d kills, want %d", i+1, kills, want)
		}
	}
}

// TestLeaseStallGate asserts the gate allows exactly the configured number
// of renewals and then stalls forever.
func TestLeaseStallGate(t *testing.T) {
	gate := &LeaseStall{AllowRenewals: 2}
	for i, want := range []bool{true, true, false, false, false} {
		if got := gate.Allow(); got != want {
			t.Fatalf("renewal %d: Allow=%v, want %v", i+1, got, want)
		}
	}
}
