package faults

import (
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/health"
)

func TestClockOffsetDriftJumps(t *testing.T) {
	base := health.NewFake()
	c := &Clock{
		Base:   base,
		Offset: 5 * time.Second,
		Drift:  0.1, // 10% fast
		Jumps:  []Jump{{After: 100 * time.Second, Delta: -30 * time.Second}},
	}
	t0 := c.Now() // anchors drift accrual
	if got, want := t0.Sub(base.Now()), 5*time.Second; got != want {
		t.Fatalf("initial skew %v, want %v", got, want)
	}
	base.Advance(50 * time.Second)
	if got, want := c.Now().Sub(base.Now()), 5*time.Second+5*time.Second; got != want {
		t.Errorf("skew after 50s %v, want %v (offset + 10%% drift)", got, want)
	}
	base.Advance(50 * time.Second) // total elapsed 100s: jump applies
	if got, want := c.Now().Sub(base.Now()), 15*time.Second-30*time.Second; got != want {
		t.Errorf("skew after jump %v, want %v", got, want)
	}
}

func TestClockZeroValueIsUnskewed(t *testing.T) {
	var c Clock
	d := time.Since(c.Now())
	if d < -time.Second || d > time.Second {
		t.Errorf("zero-value clock far from system time: %v", d)
	}
}

// TestClockAfterDriftScaling: a fast clock's timers fire early in base
// time, a slow clock's late; offset and jumps leave timers alone.
func TestClockAfterDriftScaling(t *testing.T) {
	base := health.NewFake()
	fast := &Clock{Base: base, Drift: 1.0, Offset: time.Hour} // 2x speed
	ch := fast.After(10 * time.Second)
	base.Advance(4 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	base.Advance(1 * time.Second) // 5 base seconds = 10 fast seconds
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire at scaled deadline")
	}
}
