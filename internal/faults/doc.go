// Package faults models realistic measurement- and system-plane failures
// and injects them into the probing substrate and its surroundings. The
// paper's measurement plane is shaped by exactly these pathologies:
// congestive probe loss motivates 1-loss repair (§3.3), unsynchronized,
// occasionally broken observers motivate the cross-observer check that
// discarded sites c and g in 2020 (§2.7), and ICMP rate limiting, reply
// duplication, and spoofing produce well-formed but wrong data that the
// integrity firewall (internal/integrity) exists to catch.
//
// Every injector is deterministic for a fixed Plan seed: each independent
// decision hashes (seed, observer, block, position, salt) through
// netsim.HashUnit, so two runs with the same plan corrupt the same
// records the same way. The only exceptions are the wall-clock-timed
// Stall delay and FS latency, which become deterministic when a fake
// Clock is injected.
//
// Injector catalog, by file:
//
// faults.go — observer/collection faults applied by Engine (a
// core.Prober wrapper):
//
//   - Downtime: an observer goes completely dark for a window (failed
//     hardware), producing no records at all.
//   - GilbertElliott: bursty link loss from a two-state Markov channel,
//     layered on top of the smooth diurnal probe.LossModel.
//   - ClockSkew: a constant offset plus per-day drift on an observer's
//     record timestamps (broken NTP).
//   - Corruption: the record pipeline duplicates, reorders, or truncates
//     whole batches of records (a crashed collector replaying or losing
//     its buffer).
//   - SpuriousCollect: whole collection calls fail transiently for a
//     deterministic subset of blocks (a rebooting collector); cleared by
//     the pipeline's retry.
//   - Stall: a block's collector hangs for a fixed delay before
//     delivering — the straggler hedged re-dispatch exists to outrun.
//   - Poison: every collection call for a selected block panics, forever
//     — the case the dead-letter quarantine exists for.
//   - Flap: an observer's stream goes empty over a window of collection
//     calls — mid-run degradation only the runtime breakers can see.
//
// attacks.go — Byzantine data attacks: observers that lie rather than
// fail, producing well-formed streams of wrong records (the integrity
// firewall's adversaries):
//
//   - RateLimitCliff: positive replies are capped per aligned time
//     window; excess positives report down, carving fake diurnal dips.
//   - DuplicateFlood: probing rounds are re-emitted several times over,
//     inflating duplicate (time, addr) observations.
//   - StaleReplay: the observer re-emits a previous round's records,
//     original timestamps included, after each current round.
//   - TimestampLie: whole rounds are shifted far outside the collection
//     window, misplacing their observations in time.
//   - SpoofPositive: positive replies are forged for addresses the round
//     never probed, many outside the block's target list E(b).
//
// clock.go — Clock/Jump: a controllable time source with scheduled
// jumps, for code that must survive wall-clock anomalies.
//
// fs.go — FS/FSPlan: a filesystem wrapper injecting write-path faults
// (short writes, failed fsyncs/renames, ENOSPC budgets, torn buffers)
// into the WAL, snapshot, and ledger writers.
//
// process.go — WorkerCrash/LeaseStall: process-level faults for the
// sharded fleet — a worker that dies mid-shard, a leaseholder that
// stalls past its lease.
//
// slowio.go — SlowReaderAt: a ReaderAt with injected per-read latency,
// for deadline-bounded snapshot reads.
//
// Engine wraps a probe.Engine and applies a Plan of observer faults and
// attacks; it satisfies core.Prober, so a faulty engine drops into the
// analysis pipeline unchanged.
package faults
