// Package geo provides the geographic layer of the reproduction: a
// deterministic synthetic world atlas standing in for Maxmind geolocation
// (paper §2.6), 2×2° gridcell bucketing, and the represented/observed
// coverage accounting of Table 4. Region densities and address-use
// profiles approximate Figure 7: Asia dense with public dynamic IPs,
// Europe and North America moderate behind always-on NAT, South America
// and Africa sparse.
package geo

import (
	"fmt"
	"math"
)

// Continent enumerates the paper's Figure 8 aggregation level.
type Continent int

// Continents in Figure 8's panel order.
const (
	Asia Continent = iota
	Europe
	NorthAmerica
	SouthAmerica
	Africa
	Oceania
)

// String names the continent.
func (c Continent) String() string {
	switch c {
	case Asia:
		return "Asia"
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case SouthAmerica:
		return "South America"
	case Africa:
		return "Africa"
	case Oceania:
		return "Oceania"
	default:
		return fmt.Sprintf("Continent(%d)", int(c))
	}
}

// Continents lists all continents in display order.
func Continents() []Continent {
	return []Continent{Asia, Europe, NorthAmerica, SouthAmerica, Africa, Oceania}
}

// CellKey identifies a 2×2° latitude/longitude gridcell by the floor of
// each coordinate divided by two ("two degrees is 222 km at the equator").
type CellKey struct {
	Lat, Lon int
}

// CellOf returns the gridcell containing the coordinate.
func CellOf(lat, lon float64) CellKey {
	return CellKey{Lat: int(math.Floor(lat / 2)), Lon: int(math.Floor(lon / 2))}
}

// Center returns the cell's center coordinate.
func (k CellKey) Center() (lat, lon float64) {
	return float64(k.Lat)*2 + 1, float64(k.Lon)*2 + 1
}

// String renders the cell's southwest corner like "(30N, 114E)", matching
// the paper's notation.
func (k CellKey) String() string {
	lat, lon := float64(k.Lat)*2, float64(k.Lon)*2
	ns, ew := "N", "E"
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	return fmt.Sprintf("(%.0f%s, %.0f%s)", lat, ns, lon, ew)
}

// Archetype classifies what kind of /24 a placement hosts. The dataset
// layer maps archetypes onto netsim block specs.
type Archetype int

// Archetypes of address use, following §3.5's discussion of why
// change-sensitivity varies by region.
const (
	// Workplace: public dynamic IPs used by desktops during work hours —
	// the prime change-sensitive population.
	Workplace Archetype = iota
	// HomePublic: home devices on public dynamic IPs (evening diurnal).
	HomePublic
	// NATGateway: a handful of always-on router addresses hiding users.
	NATGateway
	// ServerFarm: always-on servers, responsive but flat.
	ServerFarm
	// FirewalledNet: allocated space that drops probes.
	FirewalledNet
	// SparseMixed: lightly used blocks with intermittent occupancy.
	SparseMixed
)

// String names the archetype.
func (a Archetype) String() string {
	switch a {
	case Workplace:
		return "workplace"
	case HomePublic:
		return "home-public"
	case NATGateway:
		return "nat-gateway"
	case ServerFarm:
		return "server-farm"
	case FirewalledNet:
		return "firewalled"
	case SparseMixed:
		return "sparse-mixed"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// Mix is a probability distribution over archetypes for one region.
type Mix struct {
	Workplace, HomePublic, NATGateway, ServerFarm, FirewalledNet, SparseMixed float64
}

// normalizeTotal returns the sum of all weights.
func (m Mix) total() float64 {
	return m.Workplace + m.HomePublic + m.NATGateway + m.ServerFarm + m.FirewalledNet + m.SparseMixed
}

// pick selects an archetype from the mix given a uniform u in [0,1).
func (m Mix) pick(u float64) Archetype {
	t := m.total()
	if t <= 0 {
		return SparseMixed
	}
	u *= t
	for _, c := range []struct {
		w float64
		a Archetype
	}{
		{m.Workplace, Workplace},
		{m.HomePublic, HomePublic},
		{m.NATGateway, NATGateway},
		{m.ServerFarm, ServerFarm},
		{m.FirewalledNet, FirewalledNet},
		{m.SparseMixed, SparseMixed},
	} {
		if u < c.w {
			return c.a
		}
		u -= c.w
	}
	return SparseMixed
}

// Region is one country-scale area of the synthetic atlas.
type Region struct {
	// Code is an ISO-like short code ("CN", "US-W", ...); Name is the
	// human label.
	Code, Name string
	Continent  Continent
	// CenterLat/CenterLon and SpanLat/SpanLon bound the region's blocks.
	CenterLat, CenterLon float64
	SpanLat, SpanLon     float64
	// TZOffset is the local-time offset east of UTC in seconds.
	TZOffset int64
	// Weight is the relative number of /24 blocks the region contributes
	// to a world build.
	Weight float64
	// Mix is the archetype distribution.
	Mix Mix
}

// Placement locates one /24 block in the world.
type Placement struct {
	Index     int // global block index
	Region    *Region
	Lat, Lon  float64
	Cell      CellKey
	Archetype Archetype
	Seed      uint64
}
