package geo

import (
	"fmt"
	"math"

	"github.com/diurnalnet/diurnal/internal/netsim"
)

const (
	saltLat    uint64 = 0x9e01
	saltLon    uint64 = 0x9e02
	saltMix    uint64 = 0x9e03
	saltSee    uint64 = 0x9e04
	saltRad    uint64 = 0x9e05
	saltHotLat uint64 = 0x9e06
	saltHotLon uint64 = 0x9e07
)

// hotspotCount scales the number of population centers with region area:
// city-scale anchors get one, continental regions up to nine.
func hotspotCount(r *Region) int {
	n := 1 + int(math.Sqrt(r.SpanLat*r.SpanLon)/3)
	if n > 9 {
		n = 9
	}
	return n
}

// zipfPick maps a uniform u to a hotspot rank with probability
// proportional to 1/(rank+1).
func zipfPick(u float64, n int) int {
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / float64(k+1)
	}
	u *= total
	for k := 0; k < n; k++ {
		w := 1 / float64(k+1)
		if u < w {
			return k
		}
		u -= w
	}
	return n - 1
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DefaultWorld returns the synthetic atlas. Region weights and archetype
// mixes approximate Figure 7's observed distribution of change-sensitive
// blocks: best coverage in Asia, moderate in Europe and North America
// (where always-on NAT hides users), sparse in South America and Africa
// with Morocco over-represented. City-scale anchor regions pin the exact
// gridcells the paper studies (Wuhan, Beijing, Shanghai, New Delhi, the
// UAE, Slovenia, Los Angeles, Indiana).
func DefaultWorld() []Region {
	// Mixes are tuned so the world-wide filter cascade matches Table 2's
	// shape: roughly half of routed blocks are unresponsive (firewalls),
	// under 10% of responsive blocks are diurnal, and 3–8% end up
	// change-sensitive, concentrated in Asia and the diurnal-rich city
	// anchors the paper studies.
	diurnalHeavy := Mix{Workplace: 0.04, HomePublic: 0.055, NATGateway: 0.24, ServerFarm: 0.07, FirewalledNet: 0.42, SparseMixed: 0.175}
	natHeavy := Mix{Workplace: 0.008, HomePublic: 0.008, NATGateway: 0.318, ServerFarm: 0.12, FirewalledNet: 0.42, SparseMixed: 0.126}
	moderate := Mix{Workplace: 0.02, HomePublic: 0.03, NATGateway: 0.29, ServerFarm: 0.10, FirewalledNet: 0.41, SparseMixed: 0.15}
	campus := Mix{Workplace: 0.22, HomePublic: 0.02, NATGateway: 0.10, ServerFarm: 0.23, FirewalledNet: 0.33, SparseMixed: 0.10}
	cityDiurnal := Mix{Workplace: 0.26, HomePublic: 0.24, NATGateway: 0.14, ServerFarm: 0.08, FirewalledNet: 0.18, SparseMixed: 0.10}

	return []Region{
		// — Asia: the densest change-sensitive population.
		{Code: "CN", Name: "China", Continent: Asia, CenterLat: 33, CenterLon: 108, SpanLat: 22, SpanLon: 30, TZOffset: 8 * 3600, Weight: 0.26, Mix: diurnalHeavy},
		{Code: "CN-WUH", Name: "Wuhan", Continent: Asia, CenterLat: 30.9, CenterLon: 114.9, SpanLat: 1.0, SpanLon: 1.0, TZOffset: 8 * 3600, Weight: 0.020, Mix: cityDiurnal},
		{Code: "CN-BEI", Name: "Beijing", Continent: Asia, CenterLat: 39.0, CenterLon: 117.0, SpanLat: 1.0, SpanLon: 1.0, TZOffset: 8 * 3600, Weight: 0.030, Mix: cityDiurnal},
		{Code: "CN-SHA", Name: "Shanghai", Continent: Asia, CenterLat: 31.0, CenterLon: 121.0, SpanLat: 1.0, SpanLon: 1.0, TZOffset: 8 * 3600, Weight: 0.032, Mix: cityDiurnal},
		{Code: "IN", Name: "India", Continent: Asia, CenterLat: 21, CenterLon: 78, SpanLat: 14, SpanLon: 14, TZOffset: 5*3600 + 1800, Weight: 0.07, Mix: diurnalHeavy},
		{Code: "IN-DEL", Name: "New Delhi", Continent: Asia, CenterLat: 28.9, CenterLon: 77.0, SpanLat: 1.0, SpanLon: 1.0, TZOffset: 5*3600 + 1800, Weight: 0.018, Mix: cityDiurnal},
		{Code: "SEA", Name: "Southeast Asia", Continent: Asia, CenterLat: 8, CenterLon: 108, SpanLat: 16, SpanLon: 22, TZOffset: 8 * 3600, Weight: 0.07, Mix: diurnalHeavy},
		{Code: "JPKR", Name: "Japan and Korea", Continent: Asia, CenterLat: 36, CenterLon: 134, SpanLat: 8, SpanLon: 12, TZOffset: 9 * 3600, Weight: 0.06, Mix: moderate},
		{Code: "RU", Name: "Russia", Continent: Europe, CenterLat: 56, CenterLon: 44, SpanLat: 8, SpanLon: 28, TZOffset: 3 * 3600, Weight: 0.06, Mix: diurnalHeavy},
		{Code: "AE", Name: "United Arab Emirates", Continent: Asia, CenterLat: 24.9, CenterLon: 54.9, SpanLat: 1.0, SpanLon: 1.0, TZOffset: 4 * 3600, Weight: 0.020, Mix: cityDiurnal},
		// — Europe.
		{Code: "EU-W", Name: "Western Europe", Continent: Europe, CenterLat: 49, CenterLon: 4, SpanLat: 12, SpanLon: 16, TZOffset: 1 * 3600, Weight: 0.12, Mix: natHeavy},
		{Code: "EU-E", Name: "Eastern Europe", Continent: Europe, CenterLat: 50, CenterLon: 24, SpanLat: 10, SpanLon: 12, TZOffset: 2 * 3600, Weight: 0.06, Mix: diurnalHeavy},
		{Code: "SI", Name: "Slovenia", Continent: Europe, CenterLat: 46.9, CenterLon: 14.9, SpanLat: 1.0, SpanLon: 1.0, TZOffset: 1 * 3600, Weight: 0.012, Mix: cityDiurnal},
		// — North America.
		{Code: "US-W", Name: "US West", Continent: NorthAmerica, CenterLat: 39, CenterLon: -115, SpanLat: 12, SpanLon: 16, TZOffset: -8 * 3600, Weight: 0.06, Mix: natHeavy},
		{Code: "US-E", Name: "US East", Continent: NorthAmerica, CenterLat: 39, CenterLon: -83, SpanLat: 12, SpanLon: 18, TZOffset: -5 * 3600, Weight: 0.08, Mix: natHeavy},
		{Code: "US-LA", Name: "Los Angeles campus", Continent: NorthAmerica, CenterLat: 34.5, CenterLon: -117.1, SpanLat: 1.0, SpanLon: 1.0, TZOffset: -8 * 3600, Weight: 0.008, Mix: campus},
		{Code: "US-IN", Name: "Indiana campus", Continent: NorthAmerica, CenterLat: 39.0, CenterLon: -85.0, SpanLat: 1.0, SpanLon: 1.0, TZOffset: -5 * 3600, Weight: 0.006, Mix: campus},
		// — South America.
		{Code: "BR", Name: "Brazil", Continent: SouthAmerica, CenterLat: -15, CenterLon: -52, SpanLat: 16, SpanLon: 16, TZOffset: -3 * 3600, Weight: 0.05, Mix: moderate},
		{Code: "SA-W", Name: "Andean South America", Continent: SouthAmerica, CenterLat: -12, CenterLon: -72, SpanLat: 14, SpanLon: 8, TZOffset: -5 * 3600, Weight: 0.02, Mix: natHeavy},
		// — Africa.
		{Code: "MA", Name: "Morocco", Continent: Africa, CenterLat: 32, CenterLon: -7, SpanLat: 4, SpanLon: 6, TZOffset: 0, Weight: 0.03, Mix: diurnalHeavy},
		{Code: "AF-N", Name: "North Africa", Continent: Africa, CenterLat: 30, CenterLon: 12, SpanLat: 6, SpanLon: 20, TZOffset: 1 * 3600, Weight: 0.015, Mix: moderate},
		{Code: "AF-S", Name: "Sub-Saharan Africa", Continent: Africa, CenterLat: -5, CenterLon: 22, SpanLat: 20, SpanLon: 20, TZOffset: 2 * 3600, Weight: 0.012, Mix: natHeavy},
		// — Oceania.
		{Code: "OC", Name: "Oceania", Continent: Oceania, CenterLat: -28, CenterLon: 140, SpanLat: 12, SpanLon: 20, TZOffset: 10 * 3600, Weight: 0.025, Mix: natHeavy},
	}
}

// FindRegion returns the region with the given code, or nil.
func FindRegion(regions []Region, code string) *Region {
	for i := range regions {
		if regions[i].Code == code {
			return &regions[i]
		}
	}
	return nil
}

// PlaceBlocks deterministically scatters totalBlocks /24 placements over
// the regions, proportionally to their weights. Each placement gets a
// position inside its region, a gridcell, an archetype drawn from the
// region's mix, and a per-block seed.
func PlaceBlocks(regions []Region, totalBlocks int, seed uint64) ([]Placement, error) {
	if totalBlocks <= 0 {
		return nil, fmt.Errorf("geo: totalBlocks %d must be positive", totalBlocks)
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("geo: no regions")
	}
	sumW := 0.0
	for _, r := range regions {
		if r.Weight < 0 {
			return nil, fmt.Errorf("geo: region %s has negative weight", r.Code)
		}
		sumW += r.Weight
	}
	if sumW == 0 {
		return nil, fmt.Errorf("geo: all region weights are zero")
	}
	placements := make([]Placement, 0, totalBlocks)
	idx := 0
	for ri := range regions {
		r := &regions[ri]
		n := int(float64(totalBlocks)*r.Weight/sumW + 0.5)
		if n == 0 && r.Weight > 0 {
			n = 1
		}
		// Address density is heavy-tailed: blocks cluster around a few
		// population hotspots per region (cities), with a Zipf-like rank
		// distribution, so per-gridcell block counts vary by orders of
		// magnitude as in the paper's Figure 7.
		nHot := hotspotCount(r)
		for i := 0; i < n && idx < totalBlocks; i++ {
			h := zipfPick(netsim.HashUnit(seed, uint64(ri), uint64(i), saltRad), nHot)
			hotLat := r.CenterLat + (netsim.HashUnit(seed, uint64(ri), uint64(h), saltHotLat)-0.5)*r.SpanLat*0.8
			hotLon := r.CenterLon + (netsim.HashUnit(seed, uint64(ri), uint64(h), saltHotLon)-0.5)*r.SpanLon*0.8
			lat := clamp(hotLat+(netsim.HashUnit(seed, uint64(ri), uint64(i), saltLat)-0.5)*1.0,
				r.CenterLat-r.SpanLat/2, r.CenterLat+r.SpanLat/2)
			lon := clamp(hotLon+(netsim.HashUnit(seed, uint64(ri), uint64(i), saltLon)-0.5)*1.0,
				r.CenterLon-r.SpanLon/2, r.CenterLon+r.SpanLon/2)
			placements = append(placements, Placement{
				Index:     idx,
				Region:    r,
				Lat:       lat,
				Lon:       lon,
				Cell:      CellOf(lat, lon),
				Archetype: r.Mix.pick(netsim.HashUnit(seed, uint64(ri), uint64(i), saltMix)),
				Seed:      netsim.Hash64(seed, uint64(idx), saltSee),
			})
			idx++
		}
	}
	return placements, nil
}

// CellStats accumulates per-gridcell block counts for coverage analysis.
type CellStats struct {
	Responsive      int
	ChangeSensitive int
	Continent       Continent
}

// CoverageReport reproduces the structure of Table 4.
type CoverageReport struct {
	// Cells is the number of gridcells with at least one responsive block.
	Cells int
	// UnderObserved cells have fewer than MinObserved responsive blocks;
	// Observed cells have at least that many.
	UnderObserved, Observed int
	// Of the observed cells, Represented have at least MinRepresented
	// change-sensitive blocks; UnderRepresented do not.
	UnderRepresented, Represented int

	// Block-weighted sums (the "blks-sum" columns).
	CSBlocks, RespBlocks                       int
	CSBlocksObserved, RespBlocksObserved       int
	CSBlocksRepresented, RespBlocksRepresented int

	MinObserved, MinRepresented int
}

// RepresentedCellFraction is the fraction of observed cells that are
// represented (the paper's 60%).
func (r CoverageReport) RepresentedCellFraction() float64 {
	if r.Observed == 0 {
		return 0
	}
	return float64(r.Represented) / float64(r.Observed)
}

// RespBlockCoverage is the fraction of all responsive blocks that live in
// represented cells (the paper's 98.5%).
func (r CoverageReport) RespBlockCoverage() float64 {
	if r.RespBlocks == 0 {
		return 0
	}
	return float64(r.RespBlocksRepresented) / float64(r.RespBlocks)
}

// CSBlockCoverage is the fraction of change-sensitive blocks in
// represented cells (the paper's 99.7%).
func (r CoverageReport) CSBlockCoverage() float64 {
	if r.CSBlocks == 0 {
		return 0
	}
	return float64(r.CSBlocksRepresented) / float64(r.CSBlocks)
}

// Coverage computes the Table 4 accounting over per-cell stats with the
// given thresholds (the paper uses 5 and 5).
func Coverage(stats map[CellKey]*CellStats, minRepresented, minObserved int) CoverageReport {
	rep := CoverageReport{MinObserved: minObserved, MinRepresented: minRepresented}
	for _, s := range stats {
		if s.Responsive == 0 {
			continue
		}
		rep.Cells++
		rep.CSBlocks += s.ChangeSensitive
		rep.RespBlocks += s.Responsive
		if s.Responsive < minObserved {
			rep.UnderObserved++
			continue
		}
		rep.Observed++
		rep.CSBlocksObserved += s.ChangeSensitive
		rep.RespBlocksObserved += s.Responsive
		if s.ChangeSensitive >= minRepresented {
			rep.Represented++
			rep.CSBlocksRepresented += s.ChangeSensitive
			rep.RespBlocksRepresented += s.Responsive
		} else {
			rep.UnderRepresented++
		}
	}
	return rep
}

// ThresholdCurve returns, for each threshold value 1..max, the fraction of
// cells accepted when requiring that many change-sensitive blocks
// (represented) and that many responsive blocks (observed) — the two CDFs
// of the paper's Figure 14.
func ThresholdCurve(stats map[CellKey]*CellStats, max int) (represented, observed []float64) {
	totalWithResp := 0
	for _, s := range stats {
		if s.Responsive > 0 {
			totalWithResp++
		}
	}
	represented = make([]float64, max)
	observed = make([]float64, max)
	if totalWithResp == 0 {
		return represented, observed
	}
	for th := 1; th <= max; th++ {
		nRep, nObs := 0, 0
		for _, s := range stats {
			if s.Responsive == 0 {
				continue
			}
			if s.ChangeSensitive >= th {
				nRep++
			}
			if s.Responsive >= th {
				nObs++
			}
		}
		represented[th-1] = float64(nRep) / float64(totalWithResp)
		observed[th-1] = float64(nObs) / float64(totalWithResp)
	}
	return represented, observed
}
