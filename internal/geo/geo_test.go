package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCellOfPaperLandmarks(t *testing.T) {
	cases := []struct {
		name     string
		lat, lon float64
		want     string
	}{
		{"Wuhan", 30.59, 114.30, "(30N, 114E)"},
		{"Beijing", 39.90, 116.40, "(38N, 116E)"},
		{"Shanghai", 31.23, 121.47, "(30N, 120E)"},
		{"New Delhi", 28.61, 77.21, "(28N, 76E)"},
		{"Abu Dhabi", 24.45, 54.38, "(24N, 54E)"},
		{"Ljubljana", 46.06, 14.51, "(46N, 14E)"},
	}
	for _, c := range cases {
		if got := CellOf(c.lat, c.lon).String(); got != c.want {
			t.Errorf("%s: cell = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestCellOfNegativeCoordinates(t *testing.T) {
	got := CellOf(-33.45, -70.66) // Santiago
	if got.Lat != -17 || got.Lon != -36 {
		t.Fatalf("cell = %+v", got)
	}
	if s := got.String(); s != "(34S, 72W)" {
		t.Fatalf("string = %s", s)
	}
}

func TestCellOfBoundaries(t *testing.T) {
	a := CellOf(30.0, 114.0)
	b := CellOf(31.999, 115.999)
	if a != b {
		t.Fatalf("both coordinates should land in the same cell: %v vs %v", a, b)
	}
	c := CellOf(32.0, 114.0)
	if c == a {
		t.Fatal("32.0 must start the next cell")
	}
}

func TestCellRoundTripProperty(t *testing.T) {
	f := func(latRaw, lonRaw int16) bool {
		lat := float64(latRaw%90) + 0.5
		lon := float64(lonRaw%180) + 0.5
		cell := CellOf(lat, lon)
		clat, clon := cell.Center()
		return math.Abs(clat-lat) <= 1.0+1e-9 && math.Abs(clon-lon) <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestContinentsAndStrings(t *testing.T) {
	if len(Continents()) != 6 {
		t.Fatal("want 6 continents")
	}
	for _, c := range Continents() {
		if c.String() == "" {
			t.Errorf("continent %d has empty name", c)
		}
	}
	if Continent(99).String() == "" {
		t.Error("unknown continent should still render")
	}
	for _, a := range []Archetype{Workplace, HomePublic, NATGateway, ServerFarm, FirewalledNet, SparseMixed, Archetype(99)} {
		if a.String() == "" {
			t.Errorf("archetype %d has empty name", a)
		}
	}
}

func TestMixPick(t *testing.T) {
	m := Mix{Workplace: 1}
	for u := 0.0; u < 1.0; u += 0.1 {
		if got := m.pick(u); got != Workplace {
			t.Fatalf("pick(%g) = %v", u, got)
		}
	}
	if got := (Mix{}).pick(0.5); got != SparseMixed {
		t.Fatalf("empty mix should default to SparseMixed, got %v", got)
	}
	// Distribution roughly follows the weights.
	m = Mix{Workplace: 0.5, NATGateway: 0.5}
	w := 0
	n := 10000
	for i := 0; i < n; i++ {
		if m.pick(float64(i)/float64(n)) == Workplace {
			w++
		}
	}
	if frac := float64(w) / float64(n); frac < 0.45 || frac > 0.55 {
		t.Fatalf("Workplace fraction %.3f, want ~0.5", frac)
	}
}

func TestDefaultWorldSanity(t *testing.T) {
	regions := DefaultWorld()
	if len(regions) < 15 {
		t.Fatalf("atlas has only %d regions", len(regions))
	}
	codes := map[string]bool{}
	for _, r := range regions {
		if codes[r.Code] {
			t.Errorf("duplicate region code %s", r.Code)
		}
		codes[r.Code] = true
		if r.Weight <= 0 {
			t.Errorf("region %s has non-positive weight", r.Code)
		}
		if r.Mix.total() <= 0 {
			t.Errorf("region %s has empty mix", r.Code)
		}
	}
	for _, want := range []string{"CN", "CN-WUH", "CN-BEI", "IN-DEL", "AE", "SI", "US-LA", "MA"} {
		if !codes[want] {
			t.Errorf("atlas missing anchor region %s", want)
		}
	}
}

func TestAnchorRegionsPinPaperCells(t *testing.T) {
	regions := DefaultWorld()
	pl, err := PlaceBlocks(regions, 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]map[CellKey]int{}
	for _, p := range pl {
		if cells[p.Region.Code] == nil {
			cells[p.Region.Code] = map[CellKey]int{}
		}
		cells[p.Region.Code][p.Cell]++
	}
	anchors := map[string]string{
		"CN-WUH": "(30N, 114E)",
		"CN-BEI": "(38N, 116E)",
		"IN-DEL": "(28N, 76E)",
		"AE":     "(24N, 54E)",
		"SI":     "(46N, 14E)",
	}
	for code, wantCell := range anchors {
		found := false
		for cell, n := range cells[code] {
			if cell.String() == wantCell && n > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("anchor %s produced no blocks in %s (got %v)", code, wantCell, cells[code])
		}
	}
}

func TestPlaceBlocksDeterministicAndBounded(t *testing.T) {
	regions := DefaultWorld()
	p1, err := PlaceBlocks(regions, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := PlaceBlocks(regions, 1000, 7)
	if len(p1) != len(p2) {
		t.Fatalf("placement count differs: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Lat != p2[i].Lat || p1[i].Archetype != p2[i].Archetype || p1[i].Seed != p2[i].Seed {
			t.Fatalf("placement %d differs between runs", i)
		}
		r := p1[i].Region
		if math.Abs(p1[i].Lat-r.CenterLat) > r.SpanLat/2+1e-9 {
			t.Fatalf("placement %d latitude outside region %s", i, r.Code)
		}
		if math.Abs(p1[i].Lon-r.CenterLon) > r.SpanLon/2+1e-9 {
			t.Fatalf("placement %d longitude outside region %s", i, r.Code)
		}
	}
	p3, _ := PlaceBlocks(regions, 1000, 8)
	diff := false
	for i := range p1 {
		if p1[i].Lat != p3[i].Lat {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should move placements")
	}
}

func TestPlaceBlocksErrors(t *testing.T) {
	if _, err := PlaceBlocks(DefaultWorld(), 0, 1); err == nil {
		t.Error("expected error for zero blocks")
	}
	if _, err := PlaceBlocks(nil, 10, 1); err == nil {
		t.Error("expected error for no regions")
	}
	if _, err := PlaceBlocks([]Region{{Code: "X", Weight: -1}}, 10, 1); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := PlaceBlocks([]Region{{Code: "X", Weight: 0}}, 10, 1); err == nil {
		t.Error("expected error for all-zero weights")
	}
}

func TestPlaceBlocksProportionalToWeights(t *testing.T) {
	regions := []Region{
		{Code: "A", Weight: 0.8, SpanLat: 2, SpanLon: 2, Mix: Mix{Workplace: 1}},
		{Code: "B", Weight: 0.2, SpanLat: 2, SpanLon: 2, CenterLon: 50, Mix: Mix{Workplace: 1}},
	}
	pl, err := PlaceBlocks(regions, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, p := range pl {
		counts[p.Region.Code]++
	}
	if counts["A"] < 700 || counts["A"] > 900 {
		t.Fatalf("region A got %d of 1000, want ~800", counts["A"])
	}
}

func TestFindRegion(t *testing.T) {
	regions := DefaultWorld()
	if r := FindRegion(regions, "CN"); r == nil || r.Name != "China" {
		t.Fatalf("FindRegion(CN) = %+v", r)
	}
	if r := FindRegion(regions, "ZZ"); r != nil {
		t.Fatal("unknown code should return nil")
	}
}

func TestCoverageTable4Accounting(t *testing.T) {
	stats := map[CellKey]*CellStats{
		{0, 0}:  {Responsive: 100, ChangeSensitive: 20}, // represented
		{0, 1}:  {Responsive: 50, ChangeSensitive: 2},   // observed, under-represented
		{0, 2}:  {Responsive: 3, ChangeSensitive: 1},    // under-observed
		{0, 3}:  {Responsive: 0, ChangeSensitive: 0},    // not counted
		{10, 0}: {Responsive: 10, ChangeSensitive: 5},   // represented (boundary)
	}
	rep := Coverage(stats, 5, 5)
	if rep.Cells != 4 {
		t.Fatalf("cells = %d, want 4", rep.Cells)
	}
	if rep.UnderObserved != 1 || rep.Observed != 3 {
		t.Fatalf("observed split wrong: %+v", rep)
	}
	if rep.Represented != 2 || rep.UnderRepresented != 1 {
		t.Fatalf("represented split wrong: %+v", rep)
	}
	if rep.RespBlocks != 163 || rep.CSBlocks != 28 {
		t.Fatalf("block sums wrong: %+v", rep)
	}
	if rep.RespBlocksRepresented != 110 || rep.CSBlocksRepresented != 25 {
		t.Fatalf("represented sums wrong: %+v", rep)
	}
	if f := rep.RepresentedCellFraction(); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("represented fraction = %g", f)
	}
	if f := rep.RespBlockCoverage(); math.Abs(f-110.0/163) > 1e-12 {
		t.Fatalf("resp coverage = %g", f)
	}
	if f := rep.CSBlockCoverage(); math.Abs(f-25.0/28) > 1e-12 {
		t.Fatalf("cs coverage = %g", f)
	}
}

func TestCoverageEmpty(t *testing.T) {
	rep := Coverage(nil, 5, 5)
	if rep.Cells != 0 || rep.RepresentedCellFraction() != 0 || rep.RespBlockCoverage() != 0 || rep.CSBlockCoverage() != 0 {
		t.Fatalf("empty coverage should be zeros: %+v", rep)
	}
}

func TestThresholdCurveMonotone(t *testing.T) {
	stats := map[CellKey]*CellStats{}
	for i := 0; i < 50; i++ {
		stats[CellKey{0, i}] = &CellStats{Responsive: i + 1, ChangeSensitive: i / 2}
	}
	repFrac, obsFrac := ThresholdCurve(stats, 30)
	if len(repFrac) != 30 || len(obsFrac) != 30 {
		t.Fatal("curve lengths wrong")
	}
	for i := 1; i < 30; i++ {
		if repFrac[i] > repFrac[i-1]+1e-12 || obsFrac[i] > obsFrac[i-1]+1e-12 {
			t.Fatalf("curves must be non-increasing at %d", i)
		}
	}
	if obsFrac[0] != 1.0 {
		t.Fatalf("threshold 1 should accept every responsive cell, got %g", obsFrac[0])
	}
	r2, o2 := ThresholdCurve(nil, 5)
	for i := range r2 {
		if r2[i] != 0 || o2[i] != 0 {
			t.Fatal("empty stats should give zero curves")
		}
	}
}
