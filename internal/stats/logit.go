package stats

import (
	"fmt"
	"math"
)

// Logistic is a binary logistic-regression model trained by batch gradient
// descent. The paper (§3.2.3) models the probability that a block's
// full-block-scan time exceeds 6 hours with a logistic regression
// "parameterized by scanned addresses (E(b)) and availability (A)"; this
// type is that model.
type Logistic struct {
	// Weights holds one coefficient per feature; Bias is the intercept.
	Weights []float64
	Bias    float64

	// means/scales standardize features during training and prediction so
	// that gradient descent converges regardless of feature magnitudes.
	means  []float64
	scales []float64
}

// LogisticTrainOpts controls training.
type LogisticTrainOpts struct {
	LearningRate float64 // defaults to 0.5
	Iterations   int     // defaults to 500
	L2           float64 // ridge penalty, defaults to 1e-4
}

// TrainLogistic fits a logistic model to rows of features x and binary
// labels y (true = positive class). All rows must have equal length.
func TrainLogistic(x [][]float64, y []bool, opts LogisticTrainOpts) (*Logistic, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("stats: no training rows")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: %d rows but %d labels", len(x), len(y))
	}
	d := len(x[0])
	if d == 0 {
		return nil, fmt.Errorf("stats: zero-dimensional features")
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("stats: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.5
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 500
	}
	if opts.L2 < 0 {
		return nil, fmt.Errorf("stats: negative L2 penalty")
	}
	if opts.L2 == 0 {
		opts.L2 = 1e-4
	}

	m := &Logistic{
		Weights: make([]float64, d),
		means:   make([]float64, d),
		scales:  make([]float64, d),
	}
	n := float64(len(x))
	for j := 0; j < d; j++ {
		s := 0.0
		for _, row := range x {
			s += row[j]
		}
		m.means[j] = s / n
		v := 0.0
		for _, row := range x {
			dlt := row[j] - m.means[j]
			v += dlt * dlt
		}
		m.scales[j] = math.Sqrt(v / n)
		if m.scales[j] == 0 {
			m.scales[j] = 1
		}
	}

	std := make([][]float64, len(x))
	for i, row := range x {
		sr := make([]float64, d)
		for j := range row {
			sr[j] = (row[j] - m.means[j]) / m.scales[j]
		}
		std[i] = sr
	}

	gradW := make([]float64, d)
	for it := 0; it < opts.Iterations; it++ {
		for j := range gradW {
			gradW[j] = 0
		}
		gradB := 0.0
		for i, row := range std {
			p := sigmoid(dot(m.Weights, row) + m.Bias)
			t := 0.0
			if y[i] {
				t = 1
			}
			e := p - t
			for j := range row {
				gradW[j] += e * row[j]
			}
			gradB += e
		}
		for j := range m.Weights {
			m.Weights[j] -= opts.LearningRate * (gradW[j]/n + opts.L2*m.Weights[j])
		}
		m.Bias -= opts.LearningRate * gradB / n
	}
	return m, nil
}

// Prob returns the model's probability that the row belongs to the
// positive class.
func (m *Logistic) Prob(features []float64) float64 {
	z := m.Bias
	for j, v := range features {
		z += m.Weights[j] * (v - m.means[j]) / m.scales[j]
	}
	return sigmoid(z)
}

// Predict returns Prob(features) >= 0.5.
func (m *Logistic) Predict(features []float64) bool {
	return m.Prob(features) >= 0.5
}

func sigmoid(z float64) float64 {
	// Guard extremes to avoid overflow in Exp.
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
