// Package stats provides the statistical primitives used throughout the
// reproduction: descriptive statistics, Pearson correlation, empirical
// CDFs, precision/recall scoring, and a logistic-regression model used to
// predict full-block-scan time from block features (paper §3.2.3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 when len(x) < 2.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// MinMax returns the minimum and maximum of x. It panics on empty input,
// because there is no meaningful zero value for a range.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics. It panics on empty input or an
// out-of-range q.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// Pearson returns the Pearson correlation coefficient of the paired series
// x and y. It returns 0 when either series is constant, and an error when
// the lengths differ or fewer than two pairs are given.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 pairs, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ZScore returns (x - mean) / stddev elementwise. A constant series maps to
// all zeros. This is the normalization the paper applies to the STL trend
// before CUSUM so that one parameter set fits every block (§2.6).
func ZScore(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	m := Mean(x)
	sd := StdDev(x)
	if sd == 0 {
		return out
	}
	for i, v := range x {
		out[i] = (v - m) / sd
	}
	return out
}

// CDF is an empirical cumulative distribution function over observed values.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample x (which is copied).
func NewCDF(x []float64) *CDF {
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns the fraction of samples <= v, in [0, 1].
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// N returns the number of samples in the CDF.
func (c *CDF) N() int { return len(c.sorted) }

// Points returns (value, fraction<=value) pairs at each distinct sample,
// suitable for plotting a CDF curve like the paper's Figure 3.
func (c *CDF) Points() (values, fractions []float64) {
	n := len(c.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		values = append(values, c.sorted[i])
		fractions = append(fractions, float64(i+1)/float64(n))
	}
	return values, fractions
}

// Confusion tallies a binary classifier's outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) outcome.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there were no actual positives.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalseNegativeRate returns FN/(TP+FN), or 0 with no actual positives.
func (c *Confusion) FalseNegativeRate() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.TP+c.FN)
}

// String summarizes the confusion matrix and derived rates.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d precision=%.3f recall=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall())
}
