package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(x); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(x); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax of empty slice should panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Median([]float64{9}); got != 9 {
		t.Errorf("Median singleton = %g", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	x := []float64{3, 1, 2}
	Quantile(x, 0.5)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatalf("input mutated: %v", x)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %g, %v; want 1", r, err)
	}
	yn := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, yn)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("anti-correlated Pearson = %g, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant series r = %g, %v; want 0", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("expected too-few-pairs error")
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(rng.Int31n(50))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, err := Pearson(x, y)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZScore(t *testing.T) {
	z := ZScore([]float64{1, 2, 3, 4, 5})
	if math.Abs(Mean(z)) > 1e-12 {
		t.Errorf("z-score mean = %g, want 0", Mean(z))
	}
	if math.Abs(StdDev(z)-1) > 1e-12 {
		t.Errorf("z-score stddev = %g, want 1", StdDev(z))
	}
	for _, v := range ZScore([]float64{7, 7, 7}) {
		if v != 0 {
			t.Fatal("constant series should z-score to zeros")
		}
	}
	if got := ZScore(nil); len(got) != 0 {
		t.Fatalf("ZScore(nil) length %d", len(got))
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ v, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, cs := range cases {
		if got := c.At(cs.v); math.Abs(got-cs.want) > 1e-12 {
			t.Errorf("CDF.At(%g) = %g, want %g", cs.v, got, cs.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d, want 4", c.N())
	}
	vals, fracs := c.Points()
	if len(vals) != 3 || vals[1] != 2 || fracs[1] != 0.75 {
		t.Errorf("Points = %v %v", vals, fracs)
	}
	empty := NewCDF(nil)
	if empty.At(5) != 0 {
		t.Error("empty CDF should return 0")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(rng.Int31n(40))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		c := NewCDF(x)
		prev := -0.1
		for v := -3.0; v <= 3.0; v += 0.25 {
			cur := c.At(v)
			if cur < prev-1e-12 || cur < 0 || cur > 1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("tallies wrong: %+v", c)
	}
	if p := c.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %g", p)
	}
	if r := c.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("recall = %g", r)
	}
	if f := c.F1(); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("f1 = %g", f)
	}
	if fnr := c.FalseNegativeRate(); math.Abs(fnr-1.0/3) > 1e-12 {
		t.Errorf("fnr = %g", fnr)
	}
	var empty Confusion
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.FalseNegativeRate() != 0 {
		t.Error("empty confusion should yield zero rates")
	}
	if empty.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestLogisticSeparableData(t *testing.T) {
	// Points left of x=5 are negative, right are positive: trivially
	// separable, so accuracy should be perfect.
	var x [][]float64
	var y []bool
	for i := 0; i < 100; i++ {
		v := float64(i) / 10.0
		x = append(x, []float64{v})
		y = append(y, v > 5)
	}
	m, err := TrainLogistic(x, y, LogisticTrainOpts{Iterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if m.Predict(x[i]) != y[i] && math.Abs(x[i][0]-5) > 0.3 {
			t.Fatalf("misclassified clear point %v", x[i])
		}
	}
	if m.Prob([]float64{9.9}) < 0.9 {
		t.Errorf("P(9.9) = %g, want near 1", m.Prob([]float64{9.9}))
	}
	if m.Prob([]float64{0.1}) > 0.1 {
		t.Errorf("P(0.1) = %g, want near 0", m.Prob([]float64{0.1}))
	}
}

func TestLogisticTwoFeatures(t *testing.T) {
	// Label depends on the sum of two features; the model should learn
	// positive weights on both.
	rng := rand.New(rand.NewSource(11))
	var x [][]float64
	var y []bool
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, a+b > 10)
	}
	m, err := TrainLogistic(x, y, LogisticTrainOpts{Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	var c Confusion
	for i := range x {
		c.Add(m.Predict(x[i]), y[i])
	}
	if acc := float64(c.TP+c.TN) / 400; acc < 0.95 {
		t.Fatalf("accuracy %.3f < 0.95 (%s)", acc, c.String())
	}
	if m.Weights[0] <= 0 || m.Weights[1] <= 0 {
		t.Errorf("weights %v should both be positive", m.Weights)
	}
}

func TestLogisticErrors(t *testing.T) {
	if _, err := TrainLogistic(nil, nil, LogisticTrainOpts{}); err == nil {
		t.Error("expected error for empty training set")
	}
	if _, err := TrainLogistic([][]float64{{1}}, []bool{true, false}, LogisticTrainOpts{}); err == nil {
		t.Error("expected error for label-count mismatch")
	}
	if _, err := TrainLogistic([][]float64{{}}, []bool{true}, LogisticTrainOpts{}); err == nil {
		t.Error("expected error for zero-dimensional features")
	}
	if _, err := TrainLogistic([][]float64{{1}, {1, 2}}, []bool{true, false}, LogisticTrainOpts{}); err == nil {
		t.Error("expected error for ragged rows")
	}
	if _, err := TrainLogistic([][]float64{{1}}, []bool{true}, LogisticTrainOpts{L2: -1}); err == nil {
		t.Error("expected error for negative L2")
	}
}

func TestLogisticConstantFeature(t *testing.T) {
	// A constant feature must not produce NaNs (scale guards kick in).
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []bool{false, false, true, true}
	m, err := TrainLogistic(x, y, LogisticTrainOpts{Iterations: 1000})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Prob([]float64{4, 5})
	if math.IsNaN(p) {
		t.Fatal("NaN probability with constant feature")
	}
}

func TestSigmoidExtremes(t *testing.T) {
	if sigmoid(1000) != 1 || sigmoid(-1000) != 0 {
		t.Fatal("sigmoid should saturate at extremes")
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func BenchmarkTrainLogistic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []bool
	for i := 0; i < 1000; i++ {
		a, c := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, c})
		y = append(y, a+c > 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainLogistic(x, y, LogisticTrainOpts{Iterations: 200}); err != nil {
			b.Fatal(err)
		}
	}
}
