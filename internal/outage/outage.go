// Package outage implements Trinocular's Bayesian outage detection (Quan,
// Heidemann, Pradkin, SIGCOMM 2013), the system whose probing data the
// paper reuses. Each /24 block carries a belief B = P(block is up) that is
// updated per probe: a positive reply is strong evidence the block is up,
// a non-reply is weak evidence it is down, weighted by the block's
// expected availability A(E(b)). The paper's change pipeline consults
// these detections to discard changes caused by outages rather than by
// human activity (§2.6: "We can filter out such events by comparing them
// with outage detections").
package outage

import (
	"fmt"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// State is the detector's ternary block state.
type State int

const (
	// Unknown means the belief is between the decision thresholds.
	Unknown State = iota
	// Up means belief >= UpThreshold.
	Up
	// Down means belief <= DownThreshold: the block is in an outage.
	Down
)

// String names the state.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// Params tunes the Bayesian update. Zero values take Trinocular's
// published constants.
type Params struct {
	// UpThreshold and DownThreshold are the belief decision boundaries
	// (Trinocular uses 0.9 and 0.1).
	UpThreshold, DownThreshold float64
	// LieProbability is the probability of a positive reply from a down
	// block (spoofing, middleboxes); Trinocular's ε = 0.01.
	LieProbability float64
	// BeliefFloor and BeliefCeiling cap the accumulated evidence so the
	// detector can change its mind quickly (Trinocular caps odds).
	BeliefFloor, BeliefCeiling float64
}

func (p Params) withDefaults() Params {
	if p.UpThreshold == 0 {
		p.UpThreshold = 0.9
	}
	if p.DownThreshold == 0 {
		p.DownThreshold = 0.1
	}
	if p.LieProbability == 0 {
		p.LieProbability = 0.01
	}
	if p.BeliefFloor == 0 {
		p.BeliefFloor = 0.01
	}
	if p.BeliefCeiling == 0 {
		p.BeliefCeiling = 0.99
	}
	return p
}

// Interval is one detected outage: [Start, End) in Unix seconds. End is
// zero while the outage is still open at the end of observation.
type Interval struct {
	Start, End int64
}

// Covers reports whether t falls inside the interval (an open interval
// covers everything after Start).
func (iv Interval) Covers(t int64) bool {
	return t >= iv.Start && (iv.End == 0 || t < iv.End)
}

// Detector tracks one block's up/down belief over a probe stream.
type Detector struct {
	params Params
	// availability is A(E(b)): the probability that a probe to a random
	// ever-active address answers while the block is up.
	availability float64
	belief       float64
	state        State
	outages      []Interval
}

// NewDetector builds a detector for a block with the given expected
// availability (clamped into [0.05, 0.99]; Trinocular refuses to reason
// about blocks with lower A).
func NewDetector(availability float64, params Params) (*Detector, error) {
	if availability <= 0 || availability > 1 {
		return nil, fmt.Errorf("outage: availability %v outside (0,1]", availability)
	}
	if availability < 0.05 {
		availability = 0.05
	}
	if availability > 0.99 {
		availability = 0.99
	}
	p := params.withDefaults()
	if p.DownThreshold >= p.UpThreshold {
		return nil, fmt.Errorf("outage: thresholds inverted (%v >= %v)", p.DownThreshold, p.UpThreshold)
	}
	return &Detector{
		params:       p,
		availability: availability,
		belief:       p.BeliefCeiling, // blocks start presumed up
		state:        Up,
	}, nil
}

// Belief returns the current P(block up).
func (d *Detector) Belief() float64 { return d.belief }

// State returns the current decision.
func (d *Detector) State() State { return d.state }

// Observe updates the belief with one probe result at time t. Probe
// results must arrive in time order.
func (d *Detector) Observe(t int64, up bool) {
	a := d.availability
	eps := d.params.LieProbability
	// Saturation fast path: when the belief sits exactly at a cap and the
	// observation pushes further into it, the Bayesian update provably
	// re-clamps to the same value (e.g. for positive evidence aB/(aB +
	// eps(1-B)) >= B whenever a >= eps, including the den == 0 and cap == 1
	// edge cases), so the division can be skipped. Long saturated runs —
	// most of a healthy block's stream — reduce to the decision switch.
	skip := a >= eps &&
		((up && d.belief == d.params.BeliefCeiling) ||
			(!up && d.belief == d.params.BeliefFloor))
	if !skip {
		var pObsUp, pObsDown float64
		if up {
			pObsUp, pObsDown = a, eps
		} else {
			pObsUp, pObsDown = 1-a, 1-eps
		}
		num := pObsUp * d.belief
		den := num + pObsDown*(1-d.belief)
		if den > 0 {
			d.belief = num / den
		}
		if d.belief < d.params.BeliefFloor {
			d.belief = d.params.BeliefFloor
		}
		if d.belief > d.params.BeliefCeiling {
			d.belief = d.params.BeliefCeiling
		}
	}
	switch {
	case d.belief >= d.params.UpThreshold:
		if d.state == Down {
			// Outage ends.
			d.outages[len(d.outages)-1].End = t
		}
		d.state = Up
	case d.belief <= d.params.DownThreshold:
		if d.state != Down {
			d.outages = append(d.outages, Interval{Start: t})
		}
		d.state = Down
	}
}

// Outages returns the detected outage intervals so far. The last interval
// has End == 0 when the block is still down.
func (d *Detector) Outages() []Interval { return d.outages }

// FromRecords runs a detector over a merged, time-ordered record stream
// and returns the detected outages. availability is estimated from the
// stream itself when zero (mean reply rate, the long-term A estimate the
// paper describes in §2.8).
func FromRecords(records []probe.Record, availability float64, params Params) ([]Interval, error) {
	if len(records) == 0 {
		return nil, nil
	}
	if availability == 0 {
		up := 0
		for _, r := range records {
			if r.Up {
				up++
			}
		}
		availability = float64(up) / float64(len(records))
		if availability == 0 {
			return nil, nil // never-responsive block: nothing to detect
		}
	}
	d, err := NewDetector(availability, params)
	if err != nil {
		return nil, err
	}
	d.observeAll(records)
	return d.Outages(), nil
}

// observeAll is Observe unrolled over a whole record stream with the
// belief, state, and parameters held in locals: a world run pushes
// millions of records through the detector, and the per-call pointer
// traffic of the one-record method was a measurable profile slice. The
// arithmetic and decision order are identical to calling Observe once per
// record.
func (d *Detector) observeAll(records []probe.Record) {
	a := d.availability
	eps := d.params.LieProbability
	floor, ceil := d.params.BeliefFloor, d.params.BeliefCeiling
	upTh, downTh := d.params.UpThreshold, d.params.DownThreshold
	canSkip := a >= eps
	belief, state, outages := d.belief, d.state, d.outages
	for i := range records {
		r := &records[i]
		if !(canSkip && ((r.Up && belief == ceil) || (!r.Up && belief == floor))) {
			var pObsUp, pObsDown float64
			if r.Up {
				pObsUp, pObsDown = a, eps
			} else {
				pObsUp, pObsDown = 1-a, 1-eps
			}
			num := pObsUp * belief
			den := num + pObsDown*(1-belief)
			if den > 0 {
				belief = num / den
			}
			if belief < floor {
				belief = floor
			}
			if belief > ceil {
				belief = ceil
			}
		}
		switch {
		case belief >= upTh:
			if state == Down {
				outages[len(outages)-1].End = r.T
			}
			state = Up
		case belief <= downTh:
			if state != Down {
				outages = append(outages, Interval{Start: r.T})
			}
			state = Down
		}
	}
	d.belief, d.state, d.outages = belief, state, outages
}

// MaskChanges reports, for each change time, whether it falls within slop
// seconds of a detected outage interval — the §2.6 cross-check that
// separates network failures from human-activity changes.
func MaskChanges(times []int64, outages []Interval, slop int64) []bool {
	out := make([]bool, len(times))
	for i, t := range times {
		for _, iv := range outages {
			end := iv.End
			if end == 0 {
				end = t + slop + 1 // open outage covers everything after start
			}
			if t >= iv.Start-slop && t < end+slop {
				out[i] = true
				break
			}
		}
	}
	return out
}
