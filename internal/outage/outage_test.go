package outage

import (
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

var jan6 = netsim.Date(2020, time.January, 6)

func TestStateString(t *testing.T) {
	for _, s := range []State{Up, Down, Unknown} {
		if s.String() == "" {
			t.Errorf("state %d renders empty", s)
		}
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0, Params{}); err == nil {
		t.Error("expected error for zero availability")
	}
	if _, err := NewDetector(1.5, Params{}); err == nil {
		t.Error("expected error for availability > 1")
	}
	if _, err := NewDetector(0.5, Params{UpThreshold: 0.1, DownThreshold: 0.9}); err == nil {
		t.Error("expected error for inverted thresholds")
	}
	d, err := NewDetector(0.001, Params{}) // clamped up to 0.05
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != Up {
		t.Error("detector should start presumed up")
	}
}

func TestBeliefCollapsesOnSilence(t *testing.T) {
	d, err := NewDetector(0.6, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// A handful of non-replies should take the block down.
	for i := 0; i < 10; i++ {
		d.Observe(int64(i*660), false)
	}
	if d.State() != Down {
		t.Fatalf("state = %v after sustained silence, belief %.3f", d.State(), d.Belief())
	}
	if len(d.Outages()) != 1 || d.Outages()[0].End != 0 {
		t.Fatalf("want one open outage, got %+v", d.Outages())
	}
}

func TestBeliefRecoversOnReply(t *testing.T) {
	d, err := NewDetector(0.6, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Observe(int64(i*660), false)
	}
	// Positive replies are strong evidence: recovery within a couple.
	for i := 10; i < 14; i++ {
		d.Observe(int64(i*660), true)
	}
	if d.State() != Up {
		t.Fatalf("state = %v after replies, belief %.3f", d.State(), d.Belief())
	}
	outs := d.Outages()
	if len(outs) != 1 || outs[0].End == 0 {
		t.Fatalf("outage should be closed: %+v", outs)
	}
	if outs[0].End <= outs[0].Start {
		t.Fatal("outage interval inverted")
	}
}

func TestLowAvailabilityNeedsMoreEvidence(t *testing.T) {
	// With A = 0.1, single non-replies are weak evidence; the detector
	// must not declare an outage after just two of them.
	d, err := NewDetector(0.1, Params{})
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(0, false)
	d.Observe(660, false)
	if d.State() == Down {
		t.Fatalf("A=0.1 block marked down after 2 non-replies (belief %.3f)", d.Belief())
	}
	// But with A = 0.9, two non-replies are damning.
	d2, _ := NewDetector(0.9, Params{})
	d2.Observe(0, false)
	d2.Observe(660, false)
	if d2.Belief() >= d.Belief() {
		t.Error("higher availability should make silence more suspicious")
	}
}

func TestIntervalCovers(t *testing.T) {
	iv := Interval{Start: 100, End: 200}
	if !iv.Covers(100) || !iv.Covers(199) || iv.Covers(200) || iv.Covers(99) {
		t.Fatal("closed interval coverage wrong")
	}
	open := Interval{Start: 100}
	if !open.Covers(1 << 40) {
		t.Fatal("open interval should cover the future")
	}
}

func TestFromRecordsDetectsSimulatedOutage(t *testing.T) {
	b, err := netsim.NewBlock(1, 77, netsim.Spec{Workers: 40, AlwaysOn: 20})
	if err != nil {
		t.Fatal(err)
	}
	oStart := jan6 + 2*netsim.SecondsPerDay
	oEnd := oStart + 36*3600
	b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: oStart, End: oEnd})
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 5}
	perObs, err := eng.Collect(b, jan6, jan6+7*netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	intervals, err := FromRecords(reconstruct.Merge(perObs), 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, iv := range intervals {
		if iv.End == 0 {
			continue
		}
		// The detected interval should bracket the true outage within a
		// few probing rounds.
		if iv.Start > oStart-3600 && iv.Start < oStart+4*3600 &&
			iv.End > oEnd-4*3600 && iv.End < oEnd+4*3600 {
			found = true
		}
	}
	if !found {
		t.Fatalf("true outage [%d,%d) not found in %+v", oStart, oEnd, intervals)
	}
}

func TestFromRecordsNoFalseOutageOnHoliday(t *testing.T) {
	// A holiday silences the workers but the always-on addresses keep
	// answering: no multi-day outage should be detected.
	b, err := netsim.NewBlock(2, 78, netsim.Spec{Workers: 60, AlwaysOn: 6})
	if err != nil {
		t.Fatal(err)
	}
	h := jan6 + 7*netsim.SecondsPerDay
	b.AddEvent(netsim.Event{Kind: netsim.EventHoliday, Start: h, End: h + 5*netsim.SecondsPerDay, Adoption: 0.95})
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 6}
	perObs, err := eng.Collect(b, jan6, jan6+14*netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	intervals, err := FromRecords(reconstruct.Merge(perObs), 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range intervals {
		end := iv.End
		if end == 0 {
			end = jan6 + 14*netsim.SecondsPerDay
		}
		if end-iv.Start >= 24*3600 {
			t.Fatalf("holiday misdetected as a %d-hour outage", (end-iv.Start)/3600)
		}
	}
}

func TestFromRecordsEdgeCases(t *testing.T) {
	if ivs, err := FromRecords(nil, 0, Params{}); err != nil || ivs != nil {
		t.Fatal("empty stream should be a no-op")
	}
	// All-negative stream: availability estimate 0 -> nothing to detect.
	recs := []probe.Record{{T: 1}, {T: 2}, {T: 3}}
	if ivs, err := FromRecords(recs, 0, Params{}); err != nil || ivs != nil {
		t.Fatalf("never-responsive block should yield nothing, got %v %v", ivs, err)
	}
}

func TestMaskChanges(t *testing.T) {
	outages := []Interval{{Start: 1000, End: 2000}}
	times := []int64{500, 950, 1500, 2049, 2200}
	masked := MaskChanges(times, outages, 100)
	want := []bool{false, true, true, true, false}
	for i := range want {
		if masked[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v", i, masked[i], want[i])
		}
	}
	open := []Interval{{Start: 5000}}
	m2 := MaskChanges([]int64{4000, 6000}, open, 100)
	if m2[0] || !m2[1] {
		t.Fatalf("open-interval masking wrong: %v", m2)
	}
}

func TestBeliefBounded(t *testing.T) {
	d, err := NewDetector(0.7, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d.Observe(int64(i), i%5 == 0)
		if b := d.Belief(); b < 0.009 || b > 0.991 {
			t.Fatalf("belief %v escaped its caps", b)
		}
	}
}

// observeReference is the pre-fast-path Bayesian update, kept verbatim as
// the oracle for TestObserveSaturationFastPath.
func observeReference(d *Detector, t int64, up bool) {
	a := d.availability
	eps := d.params.LieProbability
	var pObsUp, pObsDown float64
	if up {
		pObsUp, pObsDown = a, eps
	} else {
		pObsUp, pObsDown = 1-a, 1-eps
	}
	num := pObsUp * d.belief
	den := num + pObsDown*(1-d.belief)
	if den > 0 {
		d.belief = num / den
	}
	if d.belief < d.params.BeliefFloor {
		d.belief = d.params.BeliefFloor
	}
	if d.belief > d.params.BeliefCeiling {
		d.belief = d.params.BeliefCeiling
	}
	switch {
	case d.belief >= d.params.UpThreshold:
		if d.state == Down {
			d.outages[len(d.outages)-1].End = t
		}
		d.state = Up
	case d.belief <= d.params.DownThreshold:
		if d.state != Down {
			d.outages = append(d.outages, Interval{Start: t})
		}
		d.state = Down
	}
}

// TestObserveSaturationFastPath drives Observe and the reference update
// over identical pseudorandom streams — including long saturated runs that
// exercise the skip — and demands bit-identical beliefs, states, and
// intervals at every step.
func TestObserveSaturationFastPath(t *testing.T) {
	for _, avail := range []float64{0.05, 0.3, 0.8, 0.99} {
		for _, params := range []Params{{}, {UpThreshold: 0.95, DownThreshold: 0.2, LieProbability: 0.05, BeliefFloor: 0.001, BeliefCeiling: 0.999}} {
			fast, err := NewDetector(avail, params)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewDetector(avail, params)
			if err != nil {
				t.Fatal(err)
			}
			state := uint64(12345)
			upRun, downRun := 0, 0
			for i := 0; i < 5000; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				var up bool
				switch {
				case upRun > 0:
					up, upRun = true, upRun-1
				case downRun > 0:
					up, downRun = false, downRun-1
				default:
					r := state >> 56
					switch {
					case r < 64:
						upRun = int(state>>48) & 63 // long positive runs: ceiling skips
					case r < 128:
						downRun = int(state>>48) & 63 // long negative runs: floor skips
					}
					up = state&1 == 0
				}
				fast.Observe(int64(i), up)
				observeReference(ref, int64(i), up)
				if fast.belief != ref.belief || fast.state != ref.state {
					t.Fatalf("avail %v step %d: fast (belief=%v state=%v) != ref (belief=%v state=%v)",
						avail, i, fast.belief, fast.state, ref.belief, ref.state)
				}
			}
			if len(fast.outages) != len(ref.outages) {
				t.Fatalf("avail %v: %d outages vs %d", avail, len(fast.outages), len(ref.outages))
			}
			for i := range fast.outages {
				if fast.outages[i] != ref.outages[i] {
					t.Fatalf("avail %v outage %d: %+v vs %+v", avail, i, fast.outages[i], ref.outages[i])
				}
			}
		}
	}
}
