package integrity

import (
	"testing"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// honestStream fabricates a plausible observer stream: one in-window
// record per (hour, addr) over E(b) = {0..3}, everything up.
func honestStream(n int, phase int64) []probe.Record {
	out := make([]probe.Record, 0, n)
	t := phase
	for len(out) < n {
		for a := uint8(0); a < 4 && len(out) < n; a++ {
			out = append(out, probe.Record{T: t, Addr: a, Up: true})
		}
		t += 3600
	}
	return out
}

var eb = []int{0, 1, 2, 3}

const (
	winStart = int64(0)
	winEnd   = int64(100 * 86400)
)

func check(t *testing.T, perObs [][]probe.Record) []Verdict {
	t.Helper()
	return Check(Config{}, perObs, eb, winStart, winEnd)
}

func gatedSet(vs []Verdict) []int {
	var out []int
	for _, v := range vs {
		if v.Gated {
			out = append(out, v.Observer)
		}
	}
	return out
}

func TestCheckHonestStreamsClean(t *testing.T) {
	perObs := [][]probe.Record{
		honestStream(64, 0), honestStream(64, 110), honestStream(64, 220), honestStream(64, 330),
	}
	vs := check(t, perObs)
	for _, v := range vs {
		if v.Suspect || v.Gated || v.Reason != "" {
			t.Errorf("honest observer %d judged %+v", v.Observer, v)
		}
		if s := v.AgreementScore(); s != 1 {
			t.Errorf("honest observer %d agreement %.2f, want 1", v.Observer, s)
		}
	}
}

func TestCheckOutOfWindowGate(t *testing.T) {
	bad := honestStream(64, 0)
	for i := range bad[:8] { // 12.5% > 5% ceiling
		bad[i].T = winEnd + int64(i+1)*3600
	}
	perObs := [][]probe.Record{honestStream(64, 110), honestStream(64, 220), honestStream(64, 330), bad}
	vs := check(t, perObs)
	if got := gatedSet(vs); len(got) != 1 || got[0] != 3 {
		t.Fatalf("gated %v, want [3]", got)
	}
	if vs[3].Reason != "out-of-window" {
		t.Errorf("reason %q, want out-of-window", vs[3].Reason)
	}
}

func TestCheckNonMemberGate(t *testing.T) {
	bad := honestStream(64, 0)
	for i := range bad[:4] { // 6.25% > 2% ceiling
		bad[i].Addr = 200 // outside E(b)
	}
	perObs := [][]probe.Record{honestStream(64, 110), honestStream(64, 220), honestStream(64, 330), bad}
	vs := check(t, perObs)
	if got := gatedSet(vs); len(got) != 1 || got[0] != 3 {
		t.Fatalf("gated %v, want [3]", got)
	}
	if vs[3].Reason != "non-member" {
		t.Errorf("reason %q, want non-member", vs[3].Reason)
	}
}

func TestCheckDuplicateGate(t *testing.T) {
	bad := honestStream(56, 0)
	bad = append(bad, bad[:8]...) // 12.5% exact repeats > 5% ceiling
	perObs := [][]probe.Record{honestStream(64, 110), honestStream(64, 220), honestStream(64, 330), bad}
	vs := check(t, perObs)
	if got := gatedSet(vs); len(got) != 1 || got[0] != 3 {
		t.Fatalf("gated %v, want [3]", got)
	}
	if vs[3].Reason != "duplicates" {
		t.Errorf("reason %q, want duplicates", vs[3].Reason)
	}
}

func TestCheckReplyRateGate(t *testing.T) {
	bad := honestStream(64, 0)
	for i := range bad { // all positives rate-limited away
		bad[i].Up = false
	}
	perObs := [][]probe.Record{honestStream(64, 110), honestStream(64, 220), honestStream(64, 330), bad}
	vs := check(t, perObs)
	if got := gatedSet(vs); len(got) != 1 || got[0] != 3 {
		t.Fatalf("gated %v, want [3]", got)
	}
	if vs[3].Reason != "reply-rate" {
		t.Errorf("reason %q, want reply-rate", vs[3].Reason)
	}
	if vs[3].PeerRate != 1 {
		t.Errorf("peer median %.2f, want 1", vs[3].PeerRate)
	}
}

func TestCheckReplyRateNeedsThreeJudged(t *testing.T) {
	// With only two judged streams there is no peer median: a silent
	// stream must not be gated on rate alone.
	bad := honestStream(64, 0)
	for i := range bad {
		bad[i].Up = false
	}
	perObs := [][]probe.Record{honestStream(64, 110), bad}
	vs := check(t, perObs)
	if vs[1].Reason == "reply-rate" {
		t.Errorf("reply-rate gate fired with two judged streams: %+v", vs[1])
	}
}

func TestCheckDisagreementGate(t *testing.T) {
	// The liar reports a plausible rate and clean formats but inverts
	// every vote — only the cross-observer comparison can catch it. The
	// honest world has addresses 0–1 up and 2–3 down, so every stream's
	// reply rate is 0.5 and the rate gate stays quiet.
	split := func(phase int64, invert bool) []probe.Record {
		s := honestStream(64, phase)
		for i := range s {
			s[i].Up = (s[i].Addr < 2) != invert
		}
		return s
	}
	bad := split(330, true)
	perObs := [][]probe.Record{split(0, false), split(110, false), split(220, false), bad}
	vs := check(t, perObs)
	if got := gatedSet(vs); len(got) != 1 || got[0] != 3 {
		t.Fatalf("gated %v, want [3]: %+v", got, vs[3])
	}
	if vs[3].Reason != "disagreement" {
		t.Errorf("reason %q, want disagreement", vs[3].Reason)
	}
	if vs[3].Comparisons == 0 || vs[3].AgreementScore() >= 0.5 {
		t.Errorf("agreement %d/%d, want < 0.5", vs[3].Matches, vs[3].Comparisons)
	}
}

func TestCheckSuspectsExcludedFromMajorities(t *testing.T) {
	// The Byzantine frame-up regression: a suspect stream's flood of
	// false votes must not count in the majorities that judge honest
	// peers. The attacker votes everything down; if its votes counted,
	// every honest observer would face a 1-vs-1 tie or worse on buckets
	// only one honest peer covered.
	bad := honestStream(64, 330)
	for i := range bad {
		bad[i].Up = false
	}
	perObs := [][]probe.Record{honestStream(64, 0), honestStream(64, 110), honestStream(64, 220), bad}
	vs := check(t, perObs)
	for oi := 0; oi < 3; oi++ {
		if vs[oi].Suspect {
			t.Errorf("honest observer %d framed: %+v", oi, vs[oi])
		}
		if s := vs[oi].AgreementScore(); s != 1 {
			t.Errorf("honest observer %d agreement %.2f, want 1", oi, s)
		}
	}
	if !vs[3].Gated {
		t.Error("attacker not gated")
	}
}

func TestCheckNeverGatesAll(t *testing.T) {
	// Every judged stream trips a gate: with no honest reference the
	// firewall must keep them all.
	mk := func(phase int64) []probe.Record {
		s := honestStream(64, phase)
		for i := range s[:8] {
			s[i].T = winEnd + int64(i+1)*3600
		}
		return s
	}
	perObs := [][]probe.Record{mk(0), mk(110), mk(220)}
	vs := check(t, perObs)
	for _, v := range vs {
		if !v.Suspect {
			t.Errorf("observer %d not suspect: %+v", v.Observer, v)
		}
		if v.Gated {
			t.Errorf("observer %d gated with no honest reference", v.Observer)
		}
	}
}

func TestCheckMinRecordsSkip(t *testing.T) {
	tiny := honestStream(8, 0)
	for i := range tiny { // would trip every gate if judged
		tiny[i].T = winEnd + 1
	}
	perObs := [][]probe.Record{honestStream(64, 110), honestStream(64, 220), tiny}
	vs := check(t, perObs)
	if vs[2].Suspect || vs[2].Gated || vs[2].Reason != "" {
		t.Errorf("sub-minimum stream judged: %+v", vs[2])
	}
	if vs[2].Records != 8 {
		t.Errorf("Records = %d, want 8", vs[2].Records)
	}
}

func TestCheckPure(t *testing.T) {
	bad := honestStream(64, 0)
	for i := range bad[:8] {
		bad[i].T = winEnd + 1
	}
	perObs := [][]probe.Record{honestStream(64, 110), honestStream(64, 220), honestStream(64, 330), bad}
	snapshot := make([][]probe.Record, len(perObs))
	for i, s := range perObs {
		snapshot[i] = append([]probe.Record(nil), s...)
	}
	check(t, perObs)
	for i, s := range perObs {
		if len(s) != len(snapshot[i]) {
			t.Fatalf("stream %d length changed", i)
		}
		for j := range s {
			if s[j] != snapshot[i][j] {
				t.Fatalf("stream %d record %d mutated: %+v -> %+v", i, j, snapshot[i][j], s[j])
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BucketSeconds != 3600 || c.MaxOutOfWindow != 0.05 || c.MaxNonMember != 0.02 ||
		c.MaxDuplicate != 0.05 || c.MaxRateDelta != 0.5 || c.MinAgreement != 0.5 ||
		c.MinOverlap != 12 || c.MinRecords != 32 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}
