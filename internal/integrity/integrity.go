// Package integrity is the data-quality firewall between observer
// collection and reconstruction: per-observer, per-block sanity gates
// plus a cross-observer agreement score that together decide whether an
// observer's stream can be trusted in this block's merge.
//
// PRs 1–9 hardened the pipeline against observers that fail — downtime,
// stalls, crashes, torn disks. This package hardens it against
// observers that lie: rate-limited, spoofed, duplicated, or replayed
// replies are well-formed records of wrong facts, invisible to crash
// containment and checksums. The defense is the paper's own §2.7
// insight turned adversarial: nearby vantage points share signal, so an
// observer whose stream violates basic physics (timestamps outside the
// collection window, addresses outside the target list E(b), duplicate
// observations) or contradicts its peers on the windows they overlap is
// excluded from the merge for that block, and the verdict is attributed
// in the run report.
//
// Check is pure: it judges streams and returns verdicts without
// mutating anything. Callers (core's integrity prober, the streaming
// daemon's per-round gate) zero the gated streams themselves.
package integrity

import (
	"math/bits"
	"sort"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// Config holds the firewall's gate ceilings. The zero value takes the
// defaults; every ceiling is a fraction of the observer's own records.
type Config struct {
	// BucketSeconds is the cross-observer agreement granularity:
	// observations of the same address within the same aligned bucket
	// are treated as overlapping and compared (default 3600).
	// Unsynchronized observers never share exact timestamps, so the
	// agreement check needs a coarser notion of "the same time".
	BucketSeconds int64
	// MaxOutOfWindow is the ceiling on the fraction of records
	// timestamped outside the collection window (default 0.05).
	MaxOutOfWindow float64
	// MaxNonMember is the ceiling on the fraction of records naming
	// addresses outside the block's target list E(b) (default 0.02).
	// Honest observers probe only E(b), so the honest rate is zero.
	MaxNonMember float64
	// MaxDuplicate is the ceiling on the fraction of records repeating
	// an exact (time, addr) observation already in the stream
	// (default 0.05).
	MaxDuplicate float64
	// MaxRateDelta is the relative reply-rate shortfall versus the
	// leave-one-out peer median before an observer is suspect (default
	// 0.5): a stream whose positives were rate-limited away answers
	// markedly less than its peers over the same block. The default is
	// deliberately loose — honest observers on unlucky probing phases
	// run noticeably below the median in sparse blocks, and a false
	// accusation costs real coverage. The gate needs at least three
	// judged streams — with fewer there is no median to deviate from.
	MaxRateDelta float64
	// MinAgreement is the floor on the cross-observer agreement score
	// (matching votes / compared votes) before an observer is suspect
	// (default 0.5).
	MinAgreement float64
	// MinOverlap is the minimum number of compared votes before the
	// agreement gate may fire (default 12) — two observers that barely
	// overlap say nothing about each other.
	MinOverlap int
	// MinRecords is the minimum stream size before a stream is judged
	// at all (default 32): a handful of records has no stable rates.
	MinRecords int
}

func (c Config) withDefaults() Config {
	if c.BucketSeconds <= 0 {
		c.BucketSeconds = 3600
	}
	if c.MaxOutOfWindow <= 0 {
		c.MaxOutOfWindow = 0.05
	}
	if c.MaxNonMember <= 0 {
		c.MaxNonMember = 0.02
	}
	if c.MaxDuplicate <= 0 {
		c.MaxDuplicate = 0.05
	}
	if c.MaxRateDelta <= 0 {
		c.MaxRateDelta = 0.5
	}
	if c.MinAgreement <= 0 {
		c.MinAgreement = 0.5
	}
	if c.MinOverlap <= 0 {
		c.MinOverlap = 12
	}
	if c.MinRecords <= 0 {
		c.MinRecords = 32
	}
	return c
}

// Verdict is one observer's judgment for one block.
type Verdict struct {
	// Observer is the engine observer index the verdict is about.
	Observer int
	// Records is the stream's record count.
	Records int
	// OutOfWindow, NonMember, and Duplicates count the records each
	// sanity gate flagged.
	OutOfWindow, NonMember, Duplicates int
	// ReplyRate is the stream's positive-reply fraction; PeerRate is
	// the leave-one-out median of the other judged streams (zero when
	// fewer than three streams were judged).
	ReplyRate, PeerRate float64
	// Matches and Comparisons are the cross-observer agreement tally:
	// of the (bucket, addr) votes this observer shares with a peer
	// majority, how many agree.
	Matches, Comparisons int
	// Suspect marks a stream that tripped at least one gate; Gated
	// marks a suspect stream actually excluded from the merge (never
	// every stream at once — with no honest reference the firewall
	// cannot tell who is lying and keeps them all).
	Suspect, Gated bool
	// Reason names the first gate the stream tripped ("" when clean):
	// out-of-window, non-member, duplicates, reply-rate, disagreement.
	Reason string
}

// AgreementScore returns matches/comparisons, or 1 when the observer
// overlapped no peer (no evidence of disagreement).
func (v *Verdict) AgreementScore() float64 {
	if v.Comparisons == 0 {
		return 1
	}
	return float64(v.Matches) / float64(v.Comparisons)
}

// votes is one observer's per-bucket voting record: a bit per address
// for "voted at all" and "last vote was up". The last observation of an
// address within a bucket wins, mirroring Reconstruct's accumulator.
type votes struct {
	voted, up [4]uint64
}

func (v *votes) set(addr uint8, isUp bool) {
	w, b := addr>>6, uint64(1)<<(addr&63)
	v.voted[w] |= b
	if isUp {
		v.up[w] |= b
	} else {
		v.up[w] &^= b
	}
}

func (v *votes) get(addr uint8) (voted, isUp bool) {
	w, b := addr>>6, uint64(1)<<(addr&63)
	return v.voted[w]&b != 0, v.up[w]&b != 0
}

// Check judges each observer's raw record stream for one block against
// the collection window [start, end) and the target list eb, and
// returns one verdict per stream. Streams shorter than MinRecords are
// never judged (their verdicts stay clean), and when every judged
// stream is suspect none is gated. perObs is not modified.
func Check(c Config, perObs [][]probe.Record, eb []int, start, end int64) []Verdict {
	c = c.withDefaults()
	out := make([]Verdict, len(perObs))
	var member [256]bool
	for _, a := range eb {
		if a >= 0 && a < 256 {
			member[a] = true
		}
	}

	// Per-stream sanity tallies and per-bucket votes. Votes only count
	// in-window member records — a record both gates reject must not
	// also poison the agreement comparison.
	perBucket := make([]map[int64]*votes, len(perObs))
	judged := 0
	for oi, records := range perObs {
		v := &out[oi]
		v.Observer = oi
		v.Records = len(records)
		if len(records) < c.MinRecords {
			continue
		}
		judged++
		seen := make(map[uint64]struct{}, len(records))
		buckets := map[int64]*votes{}
		up := 0
		for _, r := range records {
			if r.Up {
				up++
			}
			key := uint64(r.T)<<8 | uint64(r.Addr)
			if _, dup := seen[key]; dup {
				v.Duplicates++
			} else {
				seen[key] = struct{}{}
			}
			if r.T < start || r.T >= end {
				v.OutOfWindow++
				continue
			}
			if !member[r.Addr] {
				v.NonMember++
				continue
			}
			bk := r.T / c.BucketSeconds
			bv := buckets[bk]
			if bv == nil {
				bv = &votes{}
				buckets[bk] = bv
			}
			bv.set(r.Addr, r.Up)
		}
		v.ReplyRate = float64(up) / float64(len(records))
		perBucket[oi] = buckets
	}

	// Leave-one-out peer reply-rate medians.
	rates := make([]float64, 0, judged)
	for oi := range out {
		if perBucket[oi] != nil {
			rates = append(rates, out[oi].ReplyRate)
		}
	}
	peerMedian := func(self float64) float64 {
		peers := make([]float64, 0, len(rates)-1)
		removed := false
		for _, r := range rates {
			if !removed && r == self {
				removed = true
				continue
			}
			peers = append(peers, r)
		}
		sort.Float64s(peers)
		return peers[len(peers)/2]
	}

	// Phase one: the per-stream gates, which need no peer votes. Reason
	// order puts physical impossibilities before statistical outliers.
	for oi := range out {
		v := &out[oi]
		if perBucket[oi] == nil {
			continue
		}
		n := float64(v.Records)
		switch {
		case float64(v.OutOfWindow)/n > c.MaxOutOfWindow:
			v.Suspect, v.Reason = true, "out-of-window"
		case float64(v.NonMember)/n > c.MaxNonMember:
			v.Suspect, v.Reason = true, "non-member"
		case float64(v.Duplicates)/n > c.MaxDuplicate:
			v.Suspect, v.Reason = true, "duplicates"
		default:
			if judged >= 3 {
				v.PeerRate = peerMedian(v.ReplyRate)
				if v.ReplyRate < v.PeerRate*(1-c.MaxRateDelta) {
					v.Suspect, v.Reason = true, "reply-rate"
				}
			}
		}
	}

	// Cross-observer agreement: each observer's (bucket, addr) votes
	// against the majority of its peers' votes on the same pair. Peer
	// ties say nothing and are skipped. Only streams still credible
	// after phase one vote in the majorities — a rate-limiting observer
	// floods the stream with false negatives, and letting those votes
	// count would tip legitimately-split pairs against honest observers
	// (the Byzantine frame-up).
	for oi := range perObs {
		buckets := perBucket[oi]
		if buckets == nil {
			continue
		}
		v := &out[oi]
		for bk, bv := range buckets {
			for w := 0; w < 4; w++ {
				rem := bv.voted[w]
				for rem != 0 {
					bit := uint8(bits.TrailingZeros64(rem))
					rem &= rem - 1
					addr := uint8(w<<6) | bit
					_, mine := bv.get(addr)
					peersUp, peersDown := 0, 0
					for pi, pb := range perBucket {
						if pi == oi || pb == nil || out[pi].Suspect {
							continue
						}
						pv := pb[bk]
						if pv == nil {
							continue
						}
						if voted, isUp := pv.get(addr); voted {
							if isUp {
								peersUp++
							} else {
								peersDown++
							}
						}
					}
					if peersUp == peersDown {
						continue
					}
					v.Comparisons++
					if mine == (peersUp > peersDown) {
						v.Matches++
					}
				}
			}
		}
	}

	// Phase two's verdict: a stream that survived the per-stream gates
	// but contradicts the credible-peer majority too often is suspect.
	suspects := 0
	for oi := range out {
		v := &out[oi]
		if perBucket[oi] == nil {
			continue
		}
		if !v.Suspect && v.Comparisons >= c.MinOverlap && v.AgreementScore() < c.MinAgreement {
			v.Suspect, v.Reason = true, "disagreement"
		}
		if v.Suspect {
			suspects++
		}
	}
	if suspects == judged {
		// Every judged stream is suspect: no honest reference remains,
		// so the firewall keeps them all rather than guessing.
		return out
	}
	for oi := range out {
		out[oi].Gated = out[oi].Suspect
	}
	return out
}
