package dsp

// Incremental spectral estimation for the streaming daemon. The batch
// pipeline takes one FFT per block per quarter; a daemon ingesting rounds
// continuously wants the diurnal energy of the trailing window after every
// round without re-transforming the window. Two primitives provide that:
// Goertzel evaluation of a single DFT bin in O(N) with no plan or scratch,
// and a sliding DFT that advances the tracked harmonic bins in O(bins) per
// sample, with periodic exact reseeding so floating-point drift from the
// recurrence never accumulates past the reseed horizon.

import (
	"math"
	"math/cmplx"
)

// GoertzelBin evaluates one DFT bin of x by Goertzel's algorithm:
// the returned value equals FFT(x)[k] (convention X_k = sum x[n]·
// e^{-2πikn/N}) up to floating-point error, in O(N) time and O(1) space.
func GoertzelBin(x []float64, k int) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	c := 2 * math.Cos(w)
	var s1, s2 float64
	for _, v := range x {
		s1, s2 = v+c*s1-s2, s1
	}
	// One zero-input step folds the recurrence into the exact bin value.
	s0 := c*s1 - s2
	return complex(s0-s1*math.Cos(w), s1*math.Sin(w))
}

// GoertzelPower returns |FFT(x)[k]|², the periodogram numerator of one bin.
func GoertzelPower(x []float64, k int) float64 {
	g := GoertzelBin(x, k)
	return real(g)*real(g) + imag(g)*imag(g)
}

// DiurnalBins returns the DFT bin indices of the target period's
// fundamental and its harmonics for a window of n samples spaced
// sampleInterval seconds apart. Harmonics that would land at or above the
// Nyquist bin are dropped. The defaults mirror DiurnalScoreOpts: 24-hour
// period, 3 harmonics.
func DiurnalBins(n int, sampleInterval, period float64, harmonics int) []int {
	if n <= 0 || sampleInterval <= 0 || period <= 0 {
		return nil
	}
	if harmonics <= 0 {
		harmonics = 3
	}
	fund := float64(n) * sampleInterval / period
	var bins []int
	for h := 1; h <= harmonics; h++ {
		k := int(math.Round(fund * float64(h)))
		if k < 1 || k > n/2 {
			break
		}
		bins = append(bins, k)
	}
	return bins
}

// defaultReseedEvery bounds how many sliding updates run between exact
// Goertzel recomputations. The recurrence multiplies by a unit-magnitude
// twiddle every step, so error grows roughly linearly in steps at machine
// epsilon scale; a few thousand steps keeps the drift far below any
// decision threshold while amortizing the O(N·bins) reseed to O(bins)
// per sample.
const defaultReseedEvery = 4096

// SlidingDiurnal tracks the diurnal spectral energy of the trailing window
// of a sample stream. Each Push advances every tracked harmonic bin with
// the sliding-DFT recurrence
//
//	X_k ← (X_k − x_oldest + x_newest) · e^{+2πik/N}
//
// and maintains the window's running sum and sum of squares, so Score —
// the fraction of the window's non-DC energy at the tracked bins, the
// streaming analogue of DiurnalScoreOpts' energy test — costs O(bins)
// per sample. Not safe for concurrent use.
type SlidingDiurnal struct {
	n           int
	bins        []int
	twid        []complex128 // e^{+2πi·k/N} per tracked bin
	dft         []complex128
	buf         []float64 // ring buffer of the trailing window
	pos         int       // index of the oldest sample once full
	count       int64     // total samples pushed
	sum         float64
	sumsq       float64
	sinceReseed int
	reseedEvery int
}

// NewSlidingDiurnal tracks the given DFT bins over a window of n samples.
// bins is retained; pass the result of DiurnalBins. A zero reseedEvery
// uses the default horizon.
func NewSlidingDiurnal(n int, bins []int, reseedEvery int) *SlidingDiurnal {
	if reseedEvery <= 0 {
		reseedEvery = defaultReseedEvery
	}
	s := &SlidingDiurnal{
		n:           n,
		bins:        bins,
		twid:        make([]complex128, len(bins)),
		dft:         make([]complex128, len(bins)),
		buf:         make([]float64, n),
		reseedEvery: reseedEvery,
	}
	for i, k := range bins {
		s.twid[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k)/float64(n)))
	}
	return s
}

// Push appends one sample to the stream, evicting the oldest window sample
// once the window is full.
func (s *SlidingDiurnal) Push(v float64) {
	if s.count < int64(s.n) {
		s.buf[s.count] = v
		s.sum += v
		s.sumsq += v * v
		s.count++
		if s.count == int64(s.n) {
			s.reseed() // window just filled: seed the bins exactly
		}
		return
	}
	old := s.buf[s.pos]
	s.buf[s.pos] = v
	s.pos = (s.pos + 1) % s.n
	s.sum += v - old
	s.sumsq += v*v - old*old
	d := complex(v-old, 0)
	for i := range s.dft {
		s.dft[i] = (s.dft[i] + d) * s.twid[i]
	}
	s.count++
	if s.sinceReseed++; s.sinceReseed >= s.reseedEvery {
		s.reseed()
	}
}

// reseed recomputes the tracked bins and window sums exactly from the ring
// buffer, canceling accumulated floating-point drift. The window is read
// in time order starting at the oldest sample; the sliding recurrence is
// phase-consistent with that origin because each update rotates by one
// sample's twiddle.
func (s *SlidingDiurnal) reseed() {
	window := s.window(make([]float64, 0, s.n))
	s.sum, s.sumsq = 0, 0
	for _, v := range window {
		s.sum += v
		s.sumsq += v * v
	}
	for i, k := range s.bins {
		s.dft[i] = GoertzelBin(window, k)
	}
	s.sinceReseed = 0
}

// window appends the trailing window in time order to dst.
func (s *SlidingDiurnal) window(dst []float64) []float64 {
	if s.count < int64(s.n) {
		return append(dst, s.buf[:s.count]...)
	}
	dst = append(dst, s.buf[s.pos:]...)
	return append(dst, s.buf[:s.pos]...)
}

// Ready reports whether a full window has been seen; Score is zero before
// that.
func (s *SlidingDiurnal) Ready() bool { return s.count >= int64(s.n) }

// Count returns the total number of samples pushed.
func (s *SlidingDiurnal) Count() int64 { return s.count }

// BinPower returns |X_k|² for tracked bin i over the current window.
func (s *SlidingDiurnal) BinPower(i int) float64 {
	g := s.dft[i]
	return real(g)*real(g) + imag(g)*imag(g)
}

// Score returns the fraction of the window's non-DC spectral energy at the
// tracked bins, in [0, 1]. By Parseval the total non-DC energy is N times
// the window's sum of squared deviations from its mean, and each tracked
// positive-frequency bin k < N/2 has a mirror at N−k carrying equal power,
// hence the factor 2. A flat window scores 0.
func (s *SlidingDiurnal) Score() float64 {
	if !s.Ready() {
		return 0
	}
	n := float64(s.n)
	ss := s.sumsq - s.sum*s.sum/n
	if ss <= 0 {
		return 0
	}
	var harm float64
	for i, k := range s.bins {
		p := s.BinPower(i)
		if 2*k == s.n {
			harm += p // Nyquist bin has no mirror
		} else {
			harm += 2 * p
		}
	}
	score := harm / (n * ss)
	if score > 1 {
		score = 1
	}
	return score
}
