// Package dsp provides the signal-processing primitives used by the
// diurnal-activity pipeline: a fast Fourier transform for arbitrary input
// lengths, periodogram estimation, and a diurnal-energy score that decides
// whether an active-address time series carries a daily rhythm.
//
// The paper (§2.4) identifies diurnal blocks "by taking the FFT of the
// active addresses over time and looking for energy in frequencies
// corresponding to 24 hours, or harmonics of that frequency". This package
// implements exactly that test, from scratch, on top of the standard
// library only.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sort"
)

// FFT returns the discrete Fourier transform of x. The input may have any
// length: power-of-two lengths use an in-place iterative radix-2
// Cooley-Tukey transform, and other lengths use Bluestein's chirp-z
// algorithm (which internally pads to a power of two). The input slice is
// not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftPow2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x up to floating-point error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftPow2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real-valued series, returning the full complex
// spectrum of length len(x).
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// fftPow2 computes an in-place radix-2 FFT. len(x) must be a power of two.
// If inverse is true the conjugate transform is computed (no 1/N scaling).
func fftPow2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform,
// expressing the DFT as a convolution that is evaluated with power-of-two
// FFTs. It returns a freshly allocated slice.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign*i*pi*k^2/n). Use k^2 mod 2n to keep the
	// argument small and the chirp exactly periodic.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		bc := cmplx.Conj(chirp[k])
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftPow2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// Periodogram returns the one-sided power spectral estimate |X_k|^2 / N for
// k = 0..N/2 of the real series x, after removing the mean (so the DC bin
// reflects only numerical residue, not the series offset).
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v-mean, 0)
	}
	spec := FFT(cx)
	half := n/2 + 1
	p := make([]float64, half)
	for k := 0; k < half; k++ {
		re := real(spec[k])
		im := imag(spec[k])
		p[k] = (re*re + im*im) / float64(n)
	}
	return p
}

// DiurnalScoreOpts configures the diurnal-energy test.
type DiurnalScoreOpts struct {
	// SampleInterval is the spacing between consecutive samples in seconds.
	SampleInterval float64
	// Period is the target period in seconds (the paper uses 24 h).
	Period float64
	// Harmonics is the number of harmonics of the fundamental to include
	// (1 means fundamental only). The paper counts "24 hours, or harmonics
	// of that frequency"; we default to 3 when zero.
	Harmonics int
	// Tolerance is the half-width, in frequency bins, of the window around
	// each harmonic whose energy is attributed to the harmonic. Defaults
	// to 1 when zero (the exact bin plus one neighbour on each side),
	// absorbing spectral leakage when the series length is not an integer
	// number of periods.
	Tolerance int
}

// DefaultDiurnalOpts returns the paper-default options for series sampled
// at Trinocular's 11-minute round interval.
func DefaultDiurnalOpts() DiurnalScoreOpts {
	return DiurnalScoreOpts{
		SampleInterval: 660,
		Period:         86400,
		Harmonics:      3,
		Tolerance:      1,
	}
}

// DiurnalScore returns the fraction of non-DC spectral energy that lies at
// the target period and its harmonics: a value in [0, 1]. A pure sinusoid
// at 24 h scores ~1; white noise scores near the fraction of bins counted.
// It returns an error when the series is shorter than two periods, because
// the fundamental is then unresolvable.
func DiurnalScore(x []float64, opts DiurnalScoreOpts) (float64, error) {
	if opts.SampleInterval <= 0 || opts.Period <= 0 {
		return 0, fmt.Errorf("dsp: non-positive interval or period")
	}
	if opts.Harmonics <= 0 {
		opts.Harmonics = 3
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1
	}
	n := len(x)
	need := int(2 * opts.Period / opts.SampleInterval)
	if n < need {
		return 0, fmt.Errorf("dsp: series of %d samples is shorter than two periods (%d samples)", n, need)
	}
	p := Periodogram(x)
	total := 0.0
	for k := 1; k < len(p); k++ {
		total += p[k]
	}
	if total == 0 {
		return 0, nil
	}
	// Fundamental bin: k = N * interval / period.
	fund := float64(n) * opts.SampleInterval / opts.Period
	inBand := make(map[int]bool)
	var bins []int
	for h := 1; h <= opts.Harmonics; h++ {
		center := int(math.Round(fund * float64(h)))
		for d := -opts.Tolerance; d <= opts.Tolerance; d++ {
			k := center + d
			if k >= 1 && k < len(p) && !inBand[k] {
				inBand[k] = true
				bins = append(bins, k)
			}
		}
	}
	// Sum in ascending bin order: ranging over the map would randomize the
	// floating-point summation order and make the score differ in the last
	// ulp between otherwise identical runs.
	sort.Ints(bins)
	band := 0.0
	for _, k := range bins {
		band += p[k]
	}
	return band / total, nil
}

// DiurnalSNR returns the contrast between the 24-hour harmonics and the
// surrounding spectral neighbourhood: the mean power of the harmonic bins
// divided by the median power of nearby non-harmonic bins. Unlike
// DiurnalScore's global energy fraction, the SNR is robust to red-spectrum
// noise (slow random wander concentrates energy at low frequencies without
// creating a sharp 24 h peak). A clean diurnal block scores in the
// hundreds; noise scores near 1.
func DiurnalSNR(x []float64, opts DiurnalScoreOpts) (float64, error) {
	if opts.SampleInterval <= 0 || opts.Period <= 0 {
		return 0, fmt.Errorf("dsp: non-positive interval or period")
	}
	if opts.Harmonics <= 0 {
		opts.Harmonics = 3
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1
	}
	n := len(x)
	need := int(2 * opts.Period / opts.SampleInterval)
	if n < need {
		return 0, fmt.Errorf("dsp: series of %d samples is shorter than two periods (%d samples)", n, need)
	}
	p := Periodogram(x)
	fund := float64(n) * opts.SampleInterval / opts.Period
	inBand := make(map[int]bool)
	band := 0.0
	nBand := 0
	for h := 1; h <= opts.Harmonics; h++ {
		center := int(math.Round(fund * float64(h)))
		// Take the strongest bin within tolerance of each harmonic (the
		// peak), tolerating leakage from non-integer cycle counts.
		best := 0.0
		found := false
		for d := -opts.Tolerance; d <= opts.Tolerance; d++ {
			k := center + d
			if k >= 1 && k < len(p) {
				inBand[k] = true
				if p[k] > best {
					best = p[k]
					found = true
				}
			}
		}
		if found {
			band += best
			nBand++
		}
	}
	if nBand == 0 {
		return 0, nil
	}
	band /= float64(nBand)
	// Neighbourhood: low-frequency region around the harmonics, excluding
	// the band bins themselves.
	lo := int(math.Round(fund / 2))
	hi := int(math.Round(fund * (float64(opts.Harmonics) + 0.5)))
	if lo < 1 {
		lo = 1
	}
	if hi >= len(p) {
		hi = len(p) - 1
	}
	var neigh []float64
	for k := lo; k <= hi; k++ {
		if !inBand[k] {
			neigh = append(neigh, p[k])
		}
	}
	if len(neigh) == 0 {
		return 0, nil
	}
	sort.Float64s(neigh)
	med := neigh[len(neigh)/2]
	if med == 0 {
		if band == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return band / med, nil
}
