// Package dsp provides the signal-processing primitives used by the
// diurnal-activity pipeline: a fast Fourier transform for arbitrary input
// lengths, periodogram estimation, and a diurnal-energy score that decides
// whether an active-address time series carries a daily rhythm.
//
// The paper (§2.4) identifies diurnal blocks "by taking the FFT of the
// active addresses over time and looking for energy in frequencies
// corresponding to 24 hours, or harmonics of that frequency". This package
// implements exactly that test, from scratch, on top of the standard
// library only.
//
// Two API layers coexist. The plan layer (Plan, RealPlan, Scratch) caches
// everything that depends only on the transform length and writes into
// reusable buffers, so a worker that analyzes millions of blocks pays the
// trigonometry and allocation once per distinct series length. The legacy
// one-shot functions below (FFT, IFFT, Periodogram, DiurnalScore,
// DiurnalSNR) remain for convenience and compatibility; each is a thin
// wrapper that builds a throwaway plan, and produces results bit-identical
// to the plan layer.
package dsp

// FFT returns the discrete Fourier transform of x. The input may have any
// length: power-of-two lengths use an in-place iterative radix-2
// Cooley-Tukey transform, and other lengths use Bluestein's chirp-z
// algorithm (which internally pads to a power of two). The input slice is
// not modified. Repeated transforms of the same length should use a Plan.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	NewPlan(n).Transform(out, x)
	return out
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x up to floating-point error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	NewPlan(n).InverseInto(out, x)
	return out
}

// FFTReal transforms a real-valued series, returning the full complex
// spectrum of length len(x).
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// Periodogram returns the one-sided power spectral estimate |X_k|^2 / N for
// k = 0..N/2 of the real series x, after removing the mean (so the DC bin
// reflects only numerical residue, not the series offset). Repeated
// periodograms should go through a Scratch, which caches the plan and the
// output buffer.
func Periodogram(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	p := NewScratch().Periodogram(x)
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// DiurnalScoreOpts configures the diurnal-energy test.
type DiurnalScoreOpts struct {
	// SampleInterval is the spacing between consecutive samples in seconds.
	SampleInterval float64
	// Period is the target period in seconds (the paper uses 24 h).
	Period float64
	// Harmonics is the number of harmonics of the fundamental to include
	// (1 means fundamental only). The paper counts "24 hours, or harmonics
	// of that frequency"; we default to 3 when zero.
	Harmonics int
	// Tolerance is the half-width, in frequency bins, of the window around
	// each harmonic whose energy is attributed to the harmonic. Defaults
	// to 1 when zero (the exact bin plus one neighbour on each side),
	// absorbing spectral leakage when the series length is not an integer
	// number of periods.
	Tolerance int
}

// DefaultDiurnalOpts returns the paper-default options for series sampled
// at Trinocular's 11-minute round interval.
func DefaultDiurnalOpts() DiurnalScoreOpts {
	return DiurnalScoreOpts{
		SampleInterval: 660,
		Period:         86400,
		Harmonics:      3,
		Tolerance:      1,
	}
}

// DiurnalStats evaluates the diurnal test with a throwaway scratch; see
// Scratch.DiurnalStats for the reusable-buffer form the pipeline uses.
func DiurnalStats(x []float64, opts DiurnalScoreOpts) (Stats, error) {
	return NewScratch().DiurnalStats(x, opts)
}

// DiurnalScore returns the fraction of non-DC spectral energy that lies at
// the target period and its harmonics: a value in [0, 1]. A pure sinusoid
// at 24 h scores ~1; white noise scores near the fraction of bins counted.
// It returns an error when the series is shorter than two periods, because
// the fundamental is then unresolvable. Callers that also need the SNR
// should use DiurnalStats, which computes both from one periodogram.
func DiurnalScore(x []float64, opts DiurnalScoreOpts) (float64, error) {
	st, err := DiurnalStats(x, opts)
	return st.Score, err
}

// DiurnalSNR returns the contrast between the 24-hour harmonics and the
// surrounding spectral neighbourhood: the mean power of the harmonic bins
// divided by the median power of nearby non-harmonic bins. Unlike
// DiurnalScore's global energy fraction, the SNR is robust to red-spectrum
// noise (slow random wander concentrates energy at low frequencies without
// creating a sharp 24 h peak). A clean diurnal block scores in the
// hundreds; noise scores near 1.
func DiurnalSNR(x []float64, opts DiurnalScoreOpts) (float64, error) {
	st, err := DiurnalStats(x, opts)
	return st.SNR, err
}
