package dsp

// Batched real-input FFTs: a BatchPlan executes N same-length transforms
// as one pass over a contiguous columnar matrix instead of N scalar
// passes. The butterflies of a radix-2 FFT are elementwise per transform
// — lane r's value at bin j never feeds lane s — so interleaving the
// lanes preserves each transform's operation order exactly, and every
// column of the batch is bit-identical to what the scalar RealPlan would
// have produced for that series (batch_test.go holds the contract, down
// to the last ULP, for even, odd, power-of-two and Bluestein lengths).
//
// The win is cache behaviour, not arithmetic count: the twiddle factor
// and bit-reversal index of each butterfly are loaded once and applied to
// every lane while the matrix row sits in cache, where the scalar loop
// reloads the same tables once per series. The inner lane loops are
// unrolled 4 wide to keep the FLOP pipeline fed.
//
// Matrix layout is columnar: element (bin j, lane r) lives at j*width+r,
// so one butterfly touches two contiguous rows. A BatchPlan shares the
// twiddle and permutation tables of the RealPlan it was built from and
// owns only the matrix work buffers; like the scalar plans it is NOT safe
// for concurrent use.

// BatchPlan executes same-length real-input transforms over many series
// at once. Build one per (length) via NewBatchPlan; the batch width is
// chosen per call and the work matrices grow to the widest batch seen.
type BatchPlan struct {
	rp *RealPlan

	zm   []complex128 // packed input matrix, half (or full) rows × width
	wm   []complex128 // Bluestein convolution matrix, m rows × width
	wm2  []complex128 // Bluestein convolution matrix for the half plan
	full []complex128 // odd-length full-spectrum matrix
}

// NewBatchPlan wraps an existing real-input plan for batched execution,
// sharing its twiddle, permutation, and chirp tables.
func NewBatchPlan(rp *RealPlan) *BatchPlan { return &BatchPlan{rp: rp} }

// Len returns the per-series length the plan transforms.
func (bp *BatchPlan) Len() int { return bp.rp.n }

// PaddedRealLen reports the power-of-two butterfly length a real-input
// transform of n samples ultimately executes: the half-length complex
// size for even n (Bluestein-padded when that half is not a power of
// two), or the Bluestein padding of n itself for odd n. Two series with
// equal PaddedRealLen share every plan table, so it is the batching size
// class — the shard iterators (dataset.BlockClasses) and the pipeline's
// batch scheduler group work by it.
func PaddedRealLen(n int) int {
	if n <= 1 {
		return 1
	}
	if n%2 == 0 {
		return paddedComplexLen(n / 2)
	}
	return paddedComplexLen(n)
}

// paddedComplexLen is the power-of-two length a complex transform of n
// points executes: n itself when it is a power of two, else the Bluestein
// convolution length (first power of two >= 2n-1).
func paddedComplexLen(n int) int {
	if n <= 1 {
		return 1
	}
	if n&(n-1) == 0 {
		return n
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	return m
}

// HalfSpectra computes, for each of the w series xs[r] (all of length
// Len()), spectrum bins 0..n/2 of the DFT of (xs[r] - shifts[r]), exactly
// as RealPlan.HalfSpectrum would per series. The result is written
// columnar into dst: bin k of lane r lands at dst[k*w+r], and dst must
// have length (n/2+1)*w.
func (bp *BatchPlan) HalfSpectra(dst []complex128, xs [][]float64, shifts []float64) {
	n := bp.rp.n
	w := len(xs)
	if n == 0 || w == 0 {
		return
	}
	if bp.rp.full != nil { // odd length: batched full complex transform
		bp.zm = growC(bp.zm, n*w)
		for r, x := range xs {
			shift := shifts[r]
			for i, v := range x {
				bp.zm[i*w+r] = complex(v-shift, 0)
			}
		}
		bp.full = growC(bp.full, n*w)
		bp.transformBatch(bp.full, bp.zm, w, bp.rp.full)
		copy(dst, bp.full[:(n/2+1)*w])
		return
	}
	h := n / 2
	// Pack: lane r's row j is (x[2j]-shift) + i*(x[2j+1]-shift), exactly
	// the scalar packing, written columnar.
	bp.zm = growC(bp.zm, h*w)
	for r, x := range xs {
		shift := shifts[r]
		for j := 0; j < h; j++ {
			bp.zm[j*w+r] = complex(x[2*j]-shift, x[2*j+1]-shift)
		}
	}
	bp.transformBatchInPlace(bp.zm, w, bp.rp.half)
	// Unpack via real-input conjugate symmetry, per lane, same formulas
	// and order as the scalar path.
	wr := bp.rp.wr
	for r := 0; r < w; r++ {
		z0 := bp.zm[r]
		dst[r] = complex(real(z0)+imag(z0), 0)
		dst[h*w+r] = complex(real(z0)-imag(z0), 0)
	}
	for k := 1; k < h; k++ {
		wk := wr[k]
		row := bp.zm[k*w:]
		conjRow := bp.zm[(h-k)*w:]
		out := dst[k*w:]
		for r := 0; r < w; r++ {
			zk := row[r]
			zc := conjCmplx(conjRow[r])
			fe := (zk + zc) * 0.5
			fo := (zk - zc) * complex(0, -0.5)
			out[r] = fe + wk*fo
		}
	}
}

func conjCmplx(z complex128) complex128 { return complex(real(z), -imag(z)) }

// transformBatch computes the forward DFT of each lane of src into dst
// (both columnar, p.Len() rows × w lanes), mirroring Plan.transform.
func (bp *BatchPlan) transformBatch(dst, src []complex128, w int, p *Plan) {
	n := p.n
	if n == 0 {
		return
	}
	if n == 1 {
		copy(dst[:w], src[:w])
		return
	}
	if p.sub == nil { // power of two
		copy(dst[:n*w], src[:n*w])
		batchButterflies(dst, w, p, false)
		return
	}
	bp.wm = bp.bluesteinBatch(bp.wm, dst, src, w, p)
}

// transformBatchInPlace transforms each lane of m in place.
func (bp *BatchPlan) transformBatchInPlace(m []complex128, w int, p *Plan) {
	n := p.n
	if n <= 1 {
		return
	}
	if p.sub == nil {
		batchButterflies(m, w, p, false)
		return
	}
	bp.wm2 = bp.bluesteinBatch(bp.wm2, m, m, w, p)
}

// bluesteinBatch runs the chirp-z convolution for every lane at once:
// chirp multiply, zero-pad, one batched forward pass of the padded
// power-of-two subplan, pointwise filter multiply, one batched inverse
// pass, and the final chirp-and-scale — each step elementwise per lane,
// so each lane reproduces Plan.transform's Bluestein arithmetic exactly.
// work is the reusable m-row matrix, returned for reuse.
func (bp *BatchPlan) bluesteinBatch(work, dst, src []complex128, w int, p *Plan) []complex128 {
	n := p.n
	chirp, bspec := p.chirpF, p.bspecF
	work = growC(work, p.m*w)
	a := work
	for k := 0; k < n; k++ {
		ck := chirp[k]
		row := src[k*w:]
		out := a[k*w:]
		for r := 0; r < w; r++ {
			out[r] = row[r] * ck
		}
	}
	for i := n * w; i < p.m*w; i++ {
		a[i] = 0
	}
	batchButterflies(a, w, p.sub, false)
	for k := 0; k < p.m; k++ {
		bk := bspec[k]
		row := a[k*w:]
		for r := 0; r < w; r++ {
			row[r] *= bk
		}
	}
	batchButterflies(a, w, p.sub, true)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		ck := chirp[k] * scale
		row := a[k*w:]
		out := dst[k*w:]
		for r := 0; r < w; r++ {
			out[r] = row[r] * ck
		}
	}
	return work
}

// batchButterflies applies p's power-of-two butterfly schedule to every
// lane of the columnar matrix m (p.Len() rows × w lanes). Stage order,
// block order, and twiddle values match Plan.butterflies exactly; only
// the lane loop is new, unrolled 4 wide.
func batchButterflies(m []complex128, w int, p *Plan, inverse bool) {
	n := p.n
	for i, j := range p.perm {
		if j > i {
			ri := m[i*w : i*w+w]
			rj := m[j*w : j*w+w]
			for r := range ri {
				ri[r], rj[r] = rj[r], ri[r]
			}
		}
	}
	tab := p.twF
	if inverse {
		tab = p.twI
	}
	for s, row := range tab {
		size := 2 << uint(s)
		half := size >> 1
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := row[k]
				er := m[(start+k)*w : (start+k)*w+w]
				or := m[(start+k+half)*w : (start+k+half)*w+w]
				r := 0
				for ; r+4 <= w; r += 4 {
					e0, e1, e2, e3 := er[r], er[r+1], er[r+2], er[r+3]
					o0, o1, o2, o3 := or[r]*tw, or[r+1]*tw, or[r+2]*tw, or[r+3]*tw
					er[r], or[r] = e0+o0, e0-o0
					er[r+1], or[r+1] = e1+o1, e1-o1
					er[r+2], or[r+2] = e2+o2, e2-o2
					er[r+3], or[r+3] = e3+o3, e3-o3
				}
				for ; r < w; r++ {
					e := er[r]
					o := or[r] * tw
					er[r], or[r] = e+o, e-o
				}
			}
		}
	}
}
