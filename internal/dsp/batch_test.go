package dsp

import (
	"math"
	"testing"
)

// batchTestSeries builds w deterministic pseudo-random series of length n
// with diurnal-ish structure plus noise, all distinct.
func batchTestSeries(n, w int) [][]float64 {
	xs := make([][]float64, w)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%10000)/10000 - 0.5
	}
	for r := range xs {
		x := make([]float64, n)
		for i := range x {
			x[i] = 20 + 10*math.Sin(2*math.Pi*float64(i)/24+float64(r)) + 3*next()
		}
		xs[r] = x
	}
	return xs
}

// TestBatchHalfSpectraParity demands every lane of the batched transform
// equals the scalar RealPlan.HalfSpectrum bit for bit, across even,
// power-of-two, odd, and Bluestein lengths and several batch widths
// (exercising both the 4-wide unrolled lanes and the remainder loop).
func TestBatchHalfSpectraParity(t *testing.T) {
	for _, n := range []int{2, 8, 24, 64, 100, 168, 336, 672, 97, 55, 1} {
		for _, w := range []int{1, 2, 3, 4, 5, 8, 9} {
			xs := batchTestSeries(n, w)
			shifts := make([]float64, w)
			for r, x := range xs {
				for _, v := range x {
					shifts[r] += v
				}
				shifts[r] /= float64(n)
			}
			sc := NewScratch()
			bp := sc.BatchPlan(n)
			half := n/2 + 1
			dst := make([]complex128, half*w)
			bp.HalfSpectra(dst, xs, shifts)
			rp := sc.RealPlan(n)
			want := make([]complex128, half)
			for r := 0; r < w; r++ {
				rp.HalfSpectrum(want, xs[r], shifts[r])
				for k := 0; k < half; k++ {
					if got := dst[k*w+r]; got != want[k] {
						t.Fatalf("n=%d w=%d lane %d bin %d: batch %v, scalar %v", n, w, r, k, got, want[k])
					}
				}
			}
		}
	}
}

// TestBatchHalfSpectraRepeated checks a plan's buffers are reusable: the
// same plan run at different widths in sequence keeps producing exact
// results (buffer growth and reuse must not leak state between calls).
func TestBatchHalfSpectraRepeated(t *testing.T) {
	const n = 56
	sc := NewScratch()
	bp := sc.BatchPlan(n)
	rp := sc.RealPlan(n)
	half := n/2 + 1
	for _, w := range []int{7, 2, 7, 1, 4} {
		xs := batchTestSeries(n, w)
		shifts := make([]float64, w)
		dst := make([]complex128, half*w)
		bp.HalfSpectra(dst, xs, shifts)
		want := make([]complex128, half)
		for r := 0; r < w; r++ {
			rp.HalfSpectrum(want, xs[r], shifts[r])
			for k := 0; k < half; k++ {
				if dst[k*w+r] != want[k] {
					t.Fatalf("w=%d lane %d bin %d mismatch after reuse", w, r, k)
				}
			}
		}
	}
}

// TestDiurnalStatsBatchParity checks the batched diurnal test returns
// exactly the scalar DiurnalStats result for every series, including the
// weak/noisy lanes.
func TestDiurnalStatsBatchParity(t *testing.T) {
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400, Harmonics: 3}
	for _, n := range []int{672, versionOddLen, 96} {
		xs := batchTestSeries(n, 6)
		// Lane 2: flat series; lane 4: pure noise.
		for i := range xs[2] {
			xs[2][i] = 7
		}
		sc := NewScratch()
		got, err := sc.DiurnalStatsBatch(xs, opts)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sc2 := NewScratch()
		for r, x := range xs {
			want, err := sc2.DiurnalStats(x, opts)
			if err != nil {
				t.Fatalf("scalar n=%d lane %d: %v", n, r, err)
			}
			if got[r] != want {
				t.Fatalf("n=%d lane %d: batch %+v scalar %+v", n, r, got[r], want)
			}
		}
	}
}

// versionOddLen is an odd series length that forces the full-complex
// (Bluestein) batched path through DiurnalStatsBatch.
const versionOddLen = 671

// TestDiurnalStatsBatchErrors checks the batch entry point rejects what
// the scalar one rejects.
func TestDiurnalStatsBatchErrors(t *testing.T) {
	sc := NewScratch()
	if _, err := sc.DiurnalStatsBatch([][]float64{make([]float64, 10)}, DiurnalScoreOpts{}); err == nil {
		t.Fatal("want error for zero opts")
	}
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400}
	if _, err := sc.DiurnalStatsBatch([][]float64{make([]float64, 10)}, opts); err == nil {
		t.Fatal("want error for short series")
	}
	if _, err := sc.DiurnalStatsBatch([][]float64{make([]float64, 96), make([]float64, 97)}, opts); err == nil {
		t.Fatal("want error for mixed lengths")
	}
	if out, err := sc.DiurnalStatsBatch(nil, opts); err != nil || out != nil {
		t.Fatalf("empty batch: got %v, %v", out, err)
	}
}

// TestPaddedRealLen pins the size-class function against the plan
// machinery it summarizes.
func TestPaddedRealLen(t *testing.T) {
	cases := map[int]int{
		0:   1,
		1:   1,
		2:   1,   // half length 1
		8:   4,   // half 4, power of two
		672: 512, // half 336 -> Bluestein pad 1024? no: 2*336-1=671 -> 1024
		64:  32,
		100: 128, // half 50 -> pad >= 99 -> 128
		97:  256, // odd -> pad >= 193 -> 256
	}
	cases[672] = 1024
	for n, want := range cases {
		if got := PaddedRealLen(n); got != want {
			t.Fatalf("PaddedRealLen(%d) = %d, want %d", n, got, want)
		}
	}
	// Same class implies shared butterfly length; sanity-check monotone
	// grouping over a realistic range.
	for n := 2; n < 2048; n += 2 {
		if PaddedRealLen(n) != paddedComplexLen(n/2) {
			t.Fatalf("even %d: class mismatch", n)
		}
	}
}
