package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation used to validate FFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, ang)
		}
		out[k] = sum
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Fatalf("FFT(nil) = %v, want nil", got)
	}
	if got := IFFT(nil); got != nil {
		t.Fatalf("IFFT(nil) = %v, want nil", got)
	}
}

func TestFFTSingle(t *testing.T) {
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || cmplx.Abs(got[0]-(3+4i)) > 1e-12 {
		t.Fatalf("FFT of singleton = %v", got)
	}
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if err := maxErr(FFT(x), naiveDFT(x)); err > 1e-8 {
			t.Errorf("n=%d: max error %g vs naive DFT", n, err)
		}
	}
}

func TestFFTMatchesNaiveDFTArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 100, 131, 257} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if err := maxErr(FFT(x), naiveDFT(x)); err > 1e-7 {
			t.Errorf("n=%d: max error %g vs naive DFT", n, err)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// The transform of a unit impulse is flat ones.
	x := make([]complex128, 16)
	x[0] = 1
	for k, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTPureTone(t *testing.T) {
	// A pure complex exponential at bin 3 concentrates all energy there.
	n := 64
	x := make([]complex128, n)
	for t := range x {
		x[t] = cmplx.Rect(1, 2*math.Pi*3*float64(t)/float64(n))
	}
	spec := FFT(x)
	for k, v := range spec {
		want := 0.0
		if k == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-8 {
			t.Fatalf("bin %d magnitude = %g, want %g", k, cmplx.Abs(v), want)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 8, 33, 131, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if err := maxErr(IFFT(FFT(x)), x); err > 1e-8 {
			t.Errorf("n=%d: round-trip error %g", n, err)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// FFT(a*x + y) == a*FFT(x) + FFT(y), checked with testing/quick over
	// random length-16 vectors.
	f := func(seed int64, scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 16
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = complex(scale, 0)*x[i] + y[i]
		}
		fx, fy, fm := FFT(x), FFT(y), FFT(mix)
		for k := range fm {
			want := complex(scale, 0)*fx[k] + fy[k]
			if cmplx.Abs(fm[k]-want) > 1e-6*(1+math.Abs(scale)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2 for any input (Parseval's theorem).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(rng.Int31n(60))
		x := make([]complex128, n)
		timeE := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		freqE := 0.0
		for _, v := range FFT(x) {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) < 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPeriodogramDCRemoved(t *testing.T) {
	// A constant series has (numerically) zero periodogram everywhere.
	x := make([]float64, 128)
	for i := range x {
		x[i] = 42.5
	}
	for k, p := range Periodogram(x) {
		if p > 1e-18 {
			t.Fatalf("bin %d = %g, want ~0 for constant input", k, p)
		}
	}
}

func TestPeriodogramSinePeak(t *testing.T) {
	// A sine with 8 cycles over 128 samples peaks exactly at bin 8.
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	p := Periodogram(x)
	best := 0
	for k := 1; k < len(p); k++ {
		if p[k] > p[best] {
			best = k
		}
	}
	if best != 8 {
		t.Fatalf("peak at bin %d, want 8", best)
	}
}

func TestPeriodogramEmpty(t *testing.T) {
	if p := Periodogram(nil); p != nil {
		t.Fatalf("Periodogram(nil) = %v, want nil", p)
	}
}

func TestDiurnalScoreSinusoid(t *testing.T) {
	// Two weeks of a clean 24-hour sinusoid at 11-minute sampling should
	// be nearly all diurnal energy.
	opts := DefaultDiurnalOpts()
	n := int(14 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		tsec := float64(i) * opts.SampleInterval
		x[i] = 10 + 5*math.Sin(2*math.Pi*tsec/86400)
	}
	score, err := DiurnalScore(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.9 {
		t.Fatalf("clean diurnal sinusoid score = %g, want >= 0.9", score)
	}
}

func TestDiurnalScoreSquareWaveHarmonics(t *testing.T) {
	// A work-day square wave (on 1/3 of the day) spreads energy into
	// harmonics; with 3 harmonics counted the score should stay high.
	opts := DefaultDiurnalOpts()
	n := int(14 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		tsec := math.Mod(float64(i)*opts.SampleInterval, 86400)
		if tsec > 8*3600 && tsec < 16*3600 {
			x[i] = 20
		} else {
			x[i] = 2
		}
	}
	score, err := DiurnalScore(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.6 {
		t.Fatalf("square-wave diurnal score = %g, want >= 0.6", score)
	}
}

func TestDiurnalScoreNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opts := DefaultDiurnalOpts()
	n := int(14 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	score, err := DiurnalScore(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if score > 0.1 {
		t.Fatalf("white-noise diurnal score = %g, want <= 0.1", score)
	}
}

func TestDiurnalScoreConstant(t *testing.T) {
	opts := DefaultDiurnalOpts()
	n := int(14 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	score, err := DiurnalScore(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Fatalf("constant series score = %g, want 0", score)
	}
}

func TestDiurnalScoreTooShort(t *testing.T) {
	opts := DefaultDiurnalOpts()
	x := make([]float64, 10)
	if _, err := DiurnalScore(x, opts); err == nil {
		t.Fatal("expected error for series shorter than two periods")
	}
}

func TestDiurnalScoreBadOpts(t *testing.T) {
	if _, err := DiurnalScore(make([]float64, 100), DiurnalScoreOpts{}); err == nil {
		t.Fatal("expected error for zero-valued options")
	}
}

func TestDiurnalScoreBounded(t *testing.T) {
	// Property: the score is always within [0, 1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := DefaultDiurnalOpts()
		n := int(3 * 86400 / opts.SampleInterval)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()*10 + math.Sin(float64(i)/20)*float64(seed%7)
		}
		s, err := DiurnalScore(x, opts)
		return err == nil && s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFTPow2_4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_3665(b *testing.B) {
	// 3665 samples = four weeks of 11-minute rounds, a typical block series.
	x := make([]complex128, 3665)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkDiurnalScoreMonth(b *testing.B) {
	opts := DefaultDiurnalOpts()
	n := int(28 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)*opts.SampleInterval/86400)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiurnalScore(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDiurnalSNRSinusoidHuge(t *testing.T) {
	opts := DefaultDiurnalOpts()
	n := int(14 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		tsec := float64(i) * opts.SampleInterval
		x[i] = 10 + 5*math.Sin(2*math.Pi*tsec/86400)
	}
	snr, err := DiurnalSNR(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snr < 100 {
		t.Fatalf("clean diurnal SNR = %g, want >> 100", snr)
	}
}

func TestDiurnalSNRWhiteNoiseLow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opts := DefaultDiurnalOpts()
	n := int(14 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	snr, err := DiurnalSNR(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snr > 15 {
		t.Fatalf("white-noise SNR = %g, want small", snr)
	}
}

func TestDiurnalSNRRejectsRedNoise(t *testing.T) {
	// A slow random walk concentrates energy at low frequencies: the
	// energy-fraction score is fooled but the SNR is not — the reason
	// both tests gate classification.
	rng := rand.New(rand.NewSource(18))
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400, Harmonics: 3}
	n := 28 * 24
	x := make([]float64, n)
	level := 0.0
	for i := range x {
		level += rng.NormFloat64()
		x[i] = level
	}
	score, err := DiurnalScore(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	snr, err := DiurnalSNR(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.05 {
		t.Skip("this walk did not concentrate low-frequency energy")
	}
	if snr > 25 {
		t.Fatalf("red noise SNR = %g, should stay below the gate (score was %g)", snr, score)
	}
}

func TestDiurnalSNRErrorsAndEdge(t *testing.T) {
	if _, err := DiurnalSNR(make([]float64, 100), DiurnalScoreOpts{}); err == nil {
		t.Error("expected error for zero options")
	}
	if _, err := DiurnalSNR(make([]float64, 10), DefaultDiurnalOpts()); err == nil {
		t.Error("expected error for too-short series")
	}
	// Constant series: zero band and zero neighbourhood -> SNR 0.
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400}
	snr, err := DiurnalSNR(make([]float64, 72), opts)
	if err != nil {
		t.Fatal(err)
	}
	if snr != 0 {
		t.Fatalf("constant series SNR = %g, want 0", snr)
	}
}
