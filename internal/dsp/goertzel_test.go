package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestGoertzelBinMatchesFFT checks the Goertzel evaluation against the FFT
// on random series of awkward lengths.
func TestGoertzelBinMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{8, 17, 64, 168, 337} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := FFTReal(x)
		for _, k := range []int{0, 1, 2, n / 3, n / 2} {
			got := GoertzelBin(x, k)
			want := spec[k]
			if d := got - want; math.Hypot(real(d), imag(d)) > 1e-8*(1+math.Hypot(real(want), imag(want))) {
				t.Errorf("n=%d k=%d: Goertzel %v, FFT %v", n, k, got, want)
			}
		}
	}
}

// TestSlidingDiurnalMatchesDirect pushes a long noisy diurnal stream and
// checks, at every step past warmup, that the sliding bins match a direct
// Goertzel over the same trailing window.
func TestSlidingDiurnalMatchesDirect(t *testing.T) {
	const n = 168 // one week of hourly samples
	bins := DiurnalBins(n, 3600, 86400, 3)
	if want := []int{7, 14, 21}; len(bins) != 3 || bins[0] != want[0] || bins[1] != want[1] || bins[2] != want[2] {
		t.Fatalf("DiurnalBins = %v, want %v", bins, want)
	}
	s := NewSlidingDiurnal(n, bins, 0)
	rng := rand.New(rand.NewSource(11))
	var stream []float64
	for i := 0; i < 3*n; i++ {
		v := 40 + 12*math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()
		stream = append(stream, v)
		s.Push(v)
		if !s.Ready() {
			continue
		}
		window := stream[len(stream)-n:]
		for bi, k := range bins {
			want := GoertzelPower(window, k)
			got := s.BinPower(bi)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("step %d bin %d: sliding %g, direct %g", i, k, got, want)
			}
		}
	}
	if sc := s.Score(); sc < 0.5 {
		t.Errorf("diurnal stream score = %g, want > 0.5", sc)
	}
}

// TestSlidingDiurnalDriftBounded runs far past the reseed horizon with a
// tiny horizon and confirms the bins stay glued to the direct computation,
// i.e. reseeding cancels recurrence drift rather than corrupting state.
func TestSlidingDiurnalDriftBounded(t *testing.T) {
	const n = 96
	bins := DiurnalBins(n, 3600, 86400, 2)
	s := NewSlidingDiurnal(n, bins, 50) // reseed every 50 pushes
	rng := rand.New(rand.NewSource(3))
	var stream []float64
	for i := 0; i < 100*n; i++ {
		v := rng.NormFloat64() * 100
		stream = append(stream, v)
		s.Push(v)
	}
	window := stream[len(stream)-n:]
	for bi, k := range bins {
		want := GoertzelPower(window, k)
		got := s.BinPower(bi)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("bin %d after long run: sliding %g, direct %g", k, got, want)
		}
	}
}

// TestSlidingDiurnalScoreRange: flat input scores 0, pure tone scores ~1,
// and a not-ready tracker scores 0.
func TestSlidingDiurnalScoreRange(t *testing.T) {
	const n = 168
	bins := DiurnalBins(n, 3600, 86400, 3)
	s := NewSlidingDiurnal(n, bins, 0)
	s.Push(1)
	if s.Ready() || s.Score() != 0 {
		t.Fatalf("tracker ready/scored after one sample")
	}
	for i := 1; i < n; i++ {
		s.Push(1)
	}
	if got := s.Score(); got != 0 {
		t.Errorf("flat window score = %g, want 0", got)
	}
	tone := NewSlidingDiurnal(n, bins, 0)
	for i := 0; i < n; i++ {
		tone.Push(math.Sin(2 * math.Pi * float64(i) / 24))
	}
	if got := tone.Score(); got < 0.99 || got > 1 {
		t.Errorf("pure 24h tone score = %g, want ~1", got)
	}
}

func BenchmarkGoertzelUpdate(b *testing.B) {
	const n = 168
	bins := DiurnalBins(n, 3600, 86400, 3)
	s := NewSlidingDiurnal(n, bins, 0)
	for i := 0; i < n; i++ {
		s.Push(float64(i % 24))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(float64(i % 24))
	}
}
