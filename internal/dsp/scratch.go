package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Stats bundles the two spectral statistics of the §2.4 diurnal test: the
// energy fraction at 24 h and its harmonics (DiurnalScore) and the peak
// contrast over the spectral neighbourhood (DiurnalSNR). Computing them
// together costs one periodogram instead of two.
type Stats struct {
	Score float64
	SNR   float64
}

// Scratch holds per-worker reusable DSP state: FFT plans cached by length
// and the periodogram/band/neighbourhood buffers of the diurnal test. A
// Scratch is not safe for concurrent use — give each goroutine its own
// (the pipeline does, via core.Scratch) rather than sharing one behind a
// lock; the zero cost of a per-worker cache beats serializing every
// transform.
type Scratch struct {
	real  map[int]*RealPlan
	cplx  map[int]*Plan
	batch map[int]*BatchPlan

	spec  []complex128 // half-spectrum buffer
	specM []complex128 // columnar batched-spectra matrix
	p     []float64    // periodogram buffer
	band  []bool       // harmonic-band membership per bin
	neigh []float64    // neighbourhood bins for the SNR median
	means []float64    // per-lane means for batched stats
}

// NewScratch returns an empty scratch; plans are built lazily per length.
func NewScratch() *Scratch {
	return &Scratch{real: map[int]*RealPlan{}, cplx: map[int]*Plan{}, batch: map[int]*BatchPlan{}}
}

// RealPlan returns the cached real-input plan for length n, building it on
// first use.
func (s *Scratch) RealPlan(n int) *RealPlan {
	if rp, ok := s.real[n]; ok {
		return rp
	}
	rp := PlanReal(n)
	s.real[n] = rp
	return rp
}

// Plan returns the cached complex plan for length n, building it on first
// use.
func (s *Scratch) Plan(n int) *Plan {
	if p, ok := s.cplx[n]; ok {
		return p
	}
	p := NewPlan(n)
	s.cplx[n] = p
	return p
}

// BatchPlan returns the cached batched real-input plan for length n,
// building it (over the cached RealPlan, whose tables it shares) on first
// use.
func (s *Scratch) BatchPlan(n int) *BatchPlan {
	if bp, ok := s.batch[n]; ok {
		return bp
	}
	bp := NewBatchPlan(s.RealPlan(n))
	s.batch[n] = bp
	return bp
}

// Periodogram returns the one-sided power spectral estimate |X_k|^2 / N
// for k = 0..N/2 of the real series x after mean removal — the same
// definition as the package-level Periodogram, but using the cached
// real-input plan and writing into a scratch-owned buffer. The returned
// slice is valid until the next call on this Scratch.
func (s *Scratch) Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	half := n/2 + 1
	s.spec = growC(s.spec, half)
	s.RealPlan(n).HalfSpectrum(s.spec, x, mean)
	s.p = growF(s.p, half)
	for k := 0; k < half; k++ {
		re := real(s.spec[k])
		im := imag(s.spec[k])
		s.p[k] = (re*re + im*im) / float64(n)
	}
	return s.p
}

// DiurnalStats evaluates the diurnal test once: a single periodogram
// yields both the energy-fraction score and the SNR, with the same
// definitions, defaults and error conditions as the DiurnalScore and
// DiurnalSNR pair it replaces. Steady-state calls on a warm Scratch
// allocate nothing.
func (s *Scratch) DiurnalStats(x []float64, opts DiurnalScoreOpts) (Stats, error) {
	if opts.SampleInterval <= 0 || opts.Period <= 0 {
		return Stats{}, fmt.Errorf("dsp: non-positive interval or period")
	}
	if opts.Harmonics <= 0 {
		opts.Harmonics = 3
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1
	}
	n := len(x)
	need := int(2 * opts.Period / opts.SampleInterval)
	if n < need {
		return Stats{}, fmt.Errorf("dsp: series of %d samples is shorter than two periods (%d samples)", n, need)
	}
	return s.statsFromPeriodogram(s.Periodogram(x), n, opts), nil
}

// DiurnalStatsBatch evaluates the diurnal test for many same-length
// series in one pass: a single batched FFT produces every periodogram,
// then the score/SNR extraction runs per series over the columnar
// spectra. Validation, defaults, and per-series results are bit-identical
// to calling DiurnalStats once per series — the batch shares the exact
// arithmetic (see BatchPlan) and the same stats kernel. The returned
// slice is freshly allocated; the spectra live in scratch buffers.
func (s *Scratch) DiurnalStatsBatch(xs [][]float64, opts DiurnalScoreOpts) ([]Stats, error) {
	if opts.SampleInterval <= 0 || opts.Period <= 0 {
		return nil, fmt.Errorf("dsp: non-positive interval or period")
	}
	if opts.Harmonics <= 0 {
		opts.Harmonics = 3
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1
	}
	w := len(xs)
	if w == 0 {
		return nil, nil
	}
	n := len(xs[0])
	for _, x := range xs[1:] {
		if len(x) != n {
			return nil, fmt.Errorf("dsp: batched series lengths differ (%d vs %d)", len(x), n)
		}
	}
	need := int(2 * opts.Period / opts.SampleInterval)
	if n < need {
		return nil, fmt.Errorf("dsp: series of %d samples is shorter than two periods (%d samples)", n, need)
	}
	// Per-series means, same summation order as the scalar Periodogram.
	s.means = growF(s.means, w)
	for r, x := range xs {
		mean := 0.0
		for _, v := range x {
			mean += v
		}
		s.means[r] = mean / float64(n)
	}
	half := n/2 + 1
	s.specM = growC(s.specM, half*w)
	s.BatchPlan(n).HalfSpectra(s.specM, xs, s.means)
	out := make([]Stats, w)
	s.p = growF(s.p, half)
	for r := 0; r < w; r++ {
		// Gather lane r's periodogram from the columnar spectra; the
		// |X|^2/N arithmetic matches the scalar Periodogram bin for bin.
		for k := 0; k < half; k++ {
			re := real(s.specM[k*w+r])
			im := imag(s.specM[k*w+r])
			s.p[k] = (re*re + im*im) / float64(n)
		}
		out[r] = s.statsFromPeriodogram(s.p, n, opts)
	}
	return out, nil
}

// statsFromPeriodogram is the shared post-FFT kernel of DiurnalStats and
// DiurnalStatsBatch: band membership, energy-fraction score, and
// peak-over-median SNR from one periodogram. opts must already carry its
// defaults.
func (s *Scratch) statsFromPeriodogram(p []float64, n int, opts DiurnalScoreOpts) Stats {
	// Harmonic band membership as a bool slice over bins: the bins of each
	// harmonic's ±Tolerance window. Iterating bins in ascending order below
	// reproduces the ascending-unique summation order the legacy map +
	// sort.Ints pair produced, without the per-call map and sort.
	s.band = growBool(s.band, len(p))
	for k := range s.band {
		s.band[k] = false
	}
	fund := float64(n) * opts.SampleInterval / opts.Period
	for h := 1; h <= opts.Harmonics; h++ {
		center := int(math.Round(fund * float64(h)))
		for d := -opts.Tolerance; d <= opts.Tolerance; d++ {
			if k := center + d; k >= 1 && k < len(p) {
				s.band[k] = true
			}
		}
	}

	var st Stats

	// Score: band energy over total non-DC energy.
	total := 0.0
	for k := 1; k < len(p); k++ {
		total += p[k]
	}
	if total > 0 {
		bandSum := 0.0
		for k := 1; k < len(p); k++ {
			if s.band[k] {
				bandSum += p[k]
			}
		}
		st.Score = bandSum / total
	}

	// SNR: mean of the per-harmonic peak bins over the median of the
	// nearby non-harmonic bins.
	peak := 0.0
	nPeak := 0
	for h := 1; h <= opts.Harmonics; h++ {
		center := int(math.Round(fund * float64(h)))
		best := 0.0
		found := false
		for d := -opts.Tolerance; d <= opts.Tolerance; d++ {
			if k := center + d; k >= 1 && k < len(p) {
				if p[k] > best {
					best = p[k]
					found = true
				}
			}
		}
		if found {
			peak += best
			nPeak++
		}
	}
	if nPeak == 0 {
		return st
	}
	peak /= float64(nPeak)
	lo := int(math.Round(fund / 2))
	hi := int(math.Round(fund * (float64(opts.Harmonics) + 0.5)))
	if lo < 1 {
		lo = 1
	}
	if hi >= len(p) {
		hi = len(p) - 1
	}
	s.neigh = s.neigh[:0]
	for k := lo; k <= hi; k++ {
		if !s.band[k] {
			s.neigh = append(s.neigh, p[k])
		}
	}
	if len(s.neigh) == 0 {
		return st
	}
	sort.Float64s(s.neigh)
	med := s.neigh[len(s.neigh)/2]
	if med == 0 {
		if peak != 0 {
			st.SNR = math.Inf(1)
		}
		return st
	}
	st.SNR = peak / med
	return st
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growC(buf []complex128, n int) []complex128 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]complex128, n)
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]bool, n)
}
