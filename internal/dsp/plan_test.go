package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randSeries returns a deterministic pseudo-random real series with a
// diurnal component, so spectral statistics exercise non-trivial paths.
func randSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = 40 + 12*math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()
	}
	return x
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// TestPlanMatchesNaiveDFT checks Plan.Transform against the O(n^2)
// reference across the length classes the pipeline sees: trivial, prime
// (Bluestein), power of two, and composite non-power-of-two.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 131, 360, 1024} {
		x := randComplex(n, int64(n))
		want := naiveDFT(x)
		got := make([]complex128, n)
		NewPlan(n).Transform(got, x)
		if err := maxErr(got, want); err > 1e-7 {
			t.Errorf("n=%d: max error %g vs naive DFT", n, err)
		}
	}
}

// TestPlanMatchesNaiveDFTSampledLarge validates a 11760-point transform
// (a 98-day hourly series, the pipeline's largest routine length) on a
// sample of bins — the full O(n^2) reference would dominate the test run.
func TestPlanMatchesNaiveDFTSampledLarge(t *testing.T) {
	const n = 11760
	x := randComplex(n, 11760)
	got := make([]complex128, n)
	NewPlan(n).Transform(got, x)
	norm := 0.0
	for _, v := range x {
		norm += cmplx.Abs(v)
	}
	for k := 0; k < n; k += 233 { // ~50 bins, coprime stride
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			want += x[j] * cmplx.Rect(1, ang)
		}
		if d := cmplx.Abs(got[k] - want); d > 1e-9*norm {
			t.Errorf("bin %d: |got-want| = %g (norm %g)", k, d, norm)
		}
	}
}

// TestPlanReuseBitIdentical checks that a warm plan reproduces its first
// transform bit for bit, and leaves the input untouched — the determinism
// contract the checkpoint fingerprints rely on.
func TestPlanReuseBitIdentical(t *testing.T) {
	for _, n := range []int{8, 360, 1024} {
		x := randComplex(n, int64(n))
		orig := append([]complex128(nil), x...)
		p := NewPlan(n)
		a := make([]complex128, n)
		b := make([]complex128, n)
		p.Transform(a, x)
		p.Transform(b, x)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("n=%d bin %d: repeated transform differs: %v vs %v", n, k, a[k], b[k])
			}
		}
		for i := range x {
			if x[i] != orig[i] {
				t.Fatalf("n=%d: Transform modified src[%d]", n, i)
			}
		}
	}
}

// TestPlanInverseRoundTrip checks InverseInto(Transform(x)) == x for both
// radix-2 and Bluestein lengths.
func TestPlanInverseRoundTrip(t *testing.T) {
	for _, n := range []int{4, 7, 64, 131, 360} {
		x := randComplex(n, int64(n)+100)
		p := NewPlan(n)
		fwd := make([]complex128, n)
		back := make([]complex128, n)
		p.Transform(fwd, x)
		p.InverseInto(back, fwd)
		if err := maxErr(back, x); err > 1e-9 {
			t.Errorf("n=%d: round-trip error %g", n, err)
		}
	}
}

// TestRealPlanMatchesComplexFFT checks the packed real-input transform
// against the full complex transform, for even lengths (half-length pack)
// and odd lengths (full-transform fallback), with and without mean shift.
func TestRealPlanMatchesComplexFFT(t *testing.T) {
	for _, n := range []int{2, 7, 8, 131, 360, 672, 1024} {
		x := randSeries(n, int64(n))
		for _, shift := range []float64{0, 40.25} {
			cx := make([]complex128, n)
			for i, v := range x {
				cx[i] = complex(v-shift, 0)
			}
			want := FFT(cx)
			half := n/2 + 1
			got := make([]complex128, half)
			PlanReal(n).HalfSpectrum(got, x, shift)
			norm := 0.0
			for _, v := range x {
				norm += math.Abs(v - shift)
			}
			if norm == 0 {
				norm = 1
			}
			for k := 0; k < half; k++ {
				if d := cmplx.Abs(got[k] - want[k]); d > 1e-12*norm {
					t.Errorf("n=%d shift=%g bin %d: |real-complex| = %g", n, shift, k, d)
				}
			}
		}
	}
}

// TestScratchPeriodogramMatchesOneShot checks the scratch path against the
// package-level Periodogram bit for bit, including across reuse at
// different lengths.
func TestScratchPeriodogramMatchesOneShot(t *testing.T) {
	sc := NewScratch()
	for _, n := range []int{48, 672, 131, 672, 48} { // revisit lengths to hit warm plans
		x := randSeries(n, int64(n)*3)
		want := Periodogram(x)
		got := sc.Periodogram(x)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d vs %d", n, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("n=%d bin %d: scratch %v vs one-shot %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestDiurnalStatsMatchesLegacyPair checks that the combined statistic
// equals the DiurnalScore/DiurnalSNR pair exactly, on diurnal, noisy, and
// edge-case series, with a reused scratch.
func TestDiurnalStatsMatchesLegacyPair(t *testing.T) {
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400, Harmonics: 3}
	sc := NewScratch()
	cases := map[string][]float64{
		"diurnal":  randSeries(28*24, 1),
		"noise":    randComplexNoise(28 * 24),
		"constant": make([]float64, 28*24),
		"short":    randSeries(24, 2),
	}
	for name, x := range cases {
		score, errScore := DiurnalScore(x, opts)
		snr, errSNR := DiurnalSNR(x, opts)
		st, err := sc.DiurnalStats(x, opts)
		if (err != nil) != (errScore != nil) || (err != nil) != (errSNR != nil) {
			t.Fatalf("%s: error mismatch: stats=%v score=%v snr=%v", name, err, errScore, errSNR)
		}
		if err != nil {
			continue
		}
		if st.Score != score || st.SNR != snr {
			t.Errorf("%s: DiurnalStats = {%v %v}, legacy pair = {%v %v}", name, st.Score, st.SNR, score, snr)
		}
	}
}

func randComplexNoise(n int) []float64 {
	rng := rand.New(rand.NewSource(99))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

// TestScratchSteadyStateAllocs checks the headline claim: a warm scratch
// computes periodograms and diurnal statistics without allocating.
func TestScratchSteadyStateAllocs(t *testing.T) {
	x := randSeries(28*24, 7)
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400, Harmonics: 3}
	sc := NewScratch()
	if _, err := sc.DiurnalStats(x, opts); err != nil { // warm up
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() { sc.Periodogram(x) }); n > 0 {
		t.Errorf("warm Periodogram allocates %.0f times per call", n)
	}
	if n := testing.AllocsPerRun(100, func() { sc.DiurnalStats(x, opts) }); n > 0 {
		t.Errorf("warm DiurnalStats allocates %.0f times per call", n)
	}
}

// BenchmarkPlanFFTPow2_4096 measures a warm-plan radix-2 transform; the
// one-shot equivalent is BenchmarkFFTPow2_4096 in fft_test.go.
func BenchmarkPlanFFTPow2_4096(b *testing.B) {
	x := randComplex(4096, 1)
	p := NewPlan(4096)
	dst := make([]complex128, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}

// BenchmarkPlanFFTBluestein_3665 measures a warm-plan transform of an
// awkward (prime-factor-heavy) length via the cached Bluestein chirp.
func BenchmarkPlanFFTBluestein_3665(b *testing.B) {
	x := randComplex(3665, 2)
	p := NewPlan(3665)
	dst := make([]complex128, 3665)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(dst, x)
	}
}

// BenchmarkDiurnalStatsMonth is the warm-scratch counterpart of
// BenchmarkDiurnalScoreMonth: same 28 days of 11-minute rounds, but one
// cached-plan periodogram yields both statistics.
func BenchmarkDiurnalStatsMonth(b *testing.B) {
	opts := DefaultDiurnalOpts()
	n := int(28 * 86400 / opts.SampleInterval)
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)*opts.SampleInterval/86400)
	}
	sc := NewScratch()
	if _, err := sc.DiurnalStats(x, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.DiurnalStats(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPeriodogram measures the scratch periodogram on a 28-day hourly
// series (672 samples, the classifier's segment length).
func BenchmarkPeriodogram(b *testing.B) {
	x := randSeries(28*24, 11)
	sc := NewScratch()
	sc.Periodogram(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Periodogram(x)
	}
}

// BenchmarkDiurnalStats measures the full diurnal test (one periodogram
// feeding both statistics) on the classifier's segment length.
func BenchmarkDiurnalStats(b *testing.B) {
	x := randSeries(28*24, 13)
	opts := DiurnalScoreOpts{SampleInterval: 3600, Period: 86400, Harmonics: 3}
	sc := NewScratch()
	if _, err := sc.DiurnalStats(x, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.DiurnalStats(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}
