package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan is a reusable FFT plan for one transform length, in the FFTW
// tradition: everything that depends only on the length — the bit-reversal
// permutation, the per-stage twiddle factors, and, for non-power-of-two
// lengths, the Bluestein chirp and its already-transformed spectrum — is
// computed once at plan time, so repeated transforms touch no trigonometry
// and allocate nothing.
//
// A Plan owns internal work buffers and is therefore NOT safe for
// concurrent use; the pipeline gives each worker goroutine its own plan
// cache (see core.Scratch) instead of sharing plans behind a mutex, which
// would serialize the hot path (see DESIGN.md).
//
// Determinism contract: the power-of-two butterfly schedule and twiddle
// generation replicate the legacy one-shot FFT exactly — same recurrence,
// same order — so plan-based transforms are bit-identical to the historic
// ones. The Bluestein path likewise reproduces the legacy arithmetic; the
// cached chirp spectrum equals what the one-shot path recomputed each call.
type Plan struct {
	n int

	// Power-of-two machinery.
	perm []int          // bit-reversal permutation
	twF  [][]complex128 // forward twiddles, one row per stage
	twI  [][]complex128 // inverse (conjugate) twiddles

	// Bluestein machinery (nil for power-of-two lengths).
	m              int   // padded power-of-two convolution length
	sub            *Plan // power-of-two subplan of length m
	chirpF, chirpI []complex128
	bspecF, bspecI []complex128 // FFT of the chirp filter, both signs
	work           []complex128 // length-m convolution buffer
}

// NewPlan precomputes a transform plan for length n (n >= 0).
func NewPlan(n int) *Plan {
	p := &Plan{n: n}
	if n <= 1 {
		return p
	}
	if n&(n-1) == 0 {
		p.initPow2(n)
		return p
	}
	p.initBluestein(n)
	return p
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

func (p *Plan) initPow2(n int) {
	p.perm = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.perm[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	p.twF = twiddleTable(n, -1)
	p.twI = twiddleTable(n, 1)
}

// twiddleTable builds the per-stage twiddle rows with the exact recurrence
// the legacy transform used (w starting at 1, repeatedly multiplied by
// cmplx.Rect(1, sign*2*pi/size)), preserving bit-identical butterflies.
func twiddleTable(n int, sign float64) [][]complex128 {
	var tab [][]complex128
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, ang)
		row := make([]complex128, half)
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			row[k] = w
			w *= wStep
		}
		tab = append(tab, row)
	}
	return tab
}

func (p *Plan) initBluestein(n int) {
	// Chirp: w[k] = exp(sign*i*pi*k^2/n), with k^2 taken mod 2n to keep the
	// argument small and the chirp exactly periodic (as the legacy path did).
	p.chirpF = chirpTable(n, -1)
	p.chirpI = chirpTable(n, 1)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	p.m = m
	p.sub = NewPlan(m)
	p.work = make([]complex128, m)
	p.bspecF = p.chirpSpectrum(p.chirpF)
	p.bspecI = p.chirpSpectrum(p.chirpI)
}

func chirpTable(n int, sign float64) []complex128 {
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	return chirp
}

// chirpSpectrum transforms the symmetric chirp filter b once at plan time;
// the one-shot path recomputed this FFT on every call.
func (p *Plan) chirpSpectrum(chirp []complex128) []complex128 {
	b := make([]complex128, p.m)
	for k := 0; k < p.n; k++ {
		bc := cmplx.Conj(chirp[k])
		b[k] = bc
		if k > 0 {
			b[p.m-k] = bc
		}
	}
	p.sub.forwardInPlace(b)
	return b
}

// Transform computes the forward DFT of src into dst. Both must have
// length Len(); dst may be the same slice as src. src is otherwise not
// modified.
func (p *Plan) Transform(dst, src []complex128) {
	p.transform(dst, src, false)
}

// InverseInto computes the inverse DFT of src into dst, normalized by 1/N
// so that InverseInto∘Transform is the identity up to floating-point
// error. Both slices must have length Len(); dst may alias src.
func (p *Plan) InverseInto(dst, src []complex128) {
	p.transform(dst, src, true)
	inv := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= inv
	}
}

func (p *Plan) transform(dst, src []complex128, inverse bool) {
	n := p.n
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = src[0]
		return
	}
	if p.sub == nil { // power of two
		copy(dst, src)
		p.butterflies(dst, inverse)
		return
	}
	chirp, bspec := p.chirpF, p.bspecF
	if inverse {
		chirp, bspec = p.chirpI, p.bspecI
	}
	a := p.work
	for k := 0; k < n; k++ {
		a[k] = src[k] * chirp[k]
	}
	for k := n; k < p.m; k++ {
		a[k] = 0
	}
	p.sub.forwardInPlace(a)
	for i := range a {
		a[i] *= bspec[i]
	}
	p.sub.inverseInPlace(a)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		dst[k] = a[k] * scale * chirp[k]
	}
}

// forwardInPlace applies the power-of-two forward butterflies to x.
func (p *Plan) forwardInPlace(x []complex128) { p.butterflies(x, false) }

// inverseInPlace applies the conjugate (unnormalized inverse) butterflies.
func (p *Plan) inverseInPlace(x []complex128) { p.butterflies(x, true) }

// butterflies runs the iterative radix-2 passes using the cached
// permutation and twiddle rows. The stage order, block order, and twiddle
// values match the legacy in-place transform exactly.
func (p *Plan) butterflies(x []complex128, inverse bool) {
	n := p.n
	for i, j := range p.perm {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tab := p.twF
	if inverse {
		tab = p.twI
	}
	for s, row := range tab {
		size := 2 << uint(s)
		half := size >> 1
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * row[k]
				x[start+k] = even + odd
				x[start+k+half] = even - odd
			}
		}
	}
}

// RealPlan is a plan for transforming a real-valued series of length n.
// For even n it packs the series into a half-length complex transform
// (z[j] = x[2j] + i*x[2j+1]) and unpacks the spectrum via the conjugate
// symmetry of real input, halving the dominant transform cost; odd lengths
// fall back to a full-length complex transform. Like Plan, a RealPlan owns
// scratch buffers and is not safe for concurrent use.
type RealPlan struct {
	n    int
	half *Plan        // complex plan of length n/2 (even n)
	full *Plan        // complex plan of length n (odd n)
	wr   []complex128 // unpack twiddles e^{-2*pi*i*k/n}, k = 0..n/2
	z    []complex128 // packed input
	zf   []complex128 // transformed packed input
}

// PlanReal precomputes a real-input plan for length n.
func PlanReal(n int) *RealPlan {
	rp := &RealPlan{n: n}
	if n == 0 {
		return rp
	}
	if n%2 == 0 && n >= 2 {
		h := n / 2
		rp.half = NewPlan(h)
		rp.z = make([]complex128, h)
		rp.zf = make([]complex128, h)
		rp.wr = make([]complex128, h+1)
		for k := 0; k <= h; k++ {
			rp.wr[k] = cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
		}
		return rp
	}
	rp.full = NewPlan(n)
	rp.z = make([]complex128, n)
	rp.zf = make([]complex128, n)
	return rp
}

// Len returns the real series length the plan was built for.
func (rp *RealPlan) Len() int { return rp.n }

// HalfSpectrum computes spectrum bins 0..n/2 of the DFT of (x - shift)
// into dst, which must have length n/2+1. The shift (typically the series
// mean) is folded into the packing step, so the input is traversed exactly
// once — no separate mean-removal or complex-widening pass.
func (rp *RealPlan) HalfSpectrum(dst []complex128, x []float64, shift float64) {
	n := rp.n
	if n == 0 {
		return
	}
	if rp.full != nil { // odd length: complex fallback, still single-pass pack
		for i, v := range x {
			rp.z[i] = complex(v-shift, 0)
		}
		rp.full.Transform(rp.zf, rp.z)
		copy(dst, rp.zf[:n/2+1])
		return
	}
	h := n / 2
	// Pack: z[j] = (x[2j]-shift) + i*(x[2j+1]-shift), one traversal.
	for j := 0; j < h; j++ {
		rp.z[j] = complex(x[2*j]-shift, x[2*j+1]-shift)
	}
	rp.half.Transform(rp.zf, rp.z)
	z0 := rp.zf[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h; k++ {
		zk := rp.zf[k]
		zc := cmplx.Conj(rp.zf[h-k])
		fe := (zk + zc) * 0.5
		fo := (zk - zc) * complex(0, -0.5)
		dst[k] = fe + rp.wr[k]*fo
	}
}
