// Package profiling wires the -cpuprofile / -memprofile flags of the
// command-line tools to runtime/pprof, so a slow world run can be taken
// straight to `go tool pprof` without rebuilding the binary as a test.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath when non-empty. The returned stop
// function ends the CPU profile and, when memPath is non-empty, forces a GC
// and writes a heap profile there. Call stop exactly once, after the
// workload of interest; either path may be empty to skip that profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			// A GC beforehand makes the heap profile reflect live objects
			// rather than whatever garbage the last cycle left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
