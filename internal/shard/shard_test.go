package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

var (
	testStart = netsim.Date(2020, time.January, 1)
	testEnd   = netsim.Date(2020, time.March, 25)
)

func testConfig() core.Config {
	cfg := core.DefaultConfig(testStart, testEnd)
	cfg.BaselineStart = testStart
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	return cfg
}

func testWorld(t *testing.T, blocks int, seed uint64) []*dataset.WorldBlock {
	t.Helper()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   blocks,
		Seed:     seed,
		Calendar: events.Year2020(),
		Start:    testStart,
		End:      testEnd,
	})
	if err != nil {
		t.Fatal(err)
	}
	return world
}

func TestPartitionTiles(t *testing.T) {
	for _, tc := range []struct{ blocks, shards int }{
		{1, 1}, {7, 3}, {10, 10}, {100, 7}, {5200, 16},
	} {
		ranges := partition(tc.blocks, tc.shards)
		if len(ranges) != tc.shards {
			t.Fatalf("partition(%d,%d): %d ranges", tc.blocks, tc.shards, len(ranges))
		}
		next := 0
		for _, r := range ranges {
			if r.Start != next {
				t.Fatalf("partition(%d,%d): shard %d starts at %d, want %d", tc.blocks, tc.shards, r.Index, r.Start, next)
			}
			if size := r.End - r.Start; size < tc.blocks/tc.shards || size > tc.blocks/tc.shards+1 {
				t.Fatalf("partition(%d,%d): shard %d has unbalanced size %d", tc.blocks, tc.shards, r.Index, size)
			}
			next = r.End
		}
		if next != tc.blocks {
			t.Fatalf("partition(%d,%d): covers %d blocks", tc.blocks, tc.shards, next)
		}
	}
}

func TestLedgerCreateValidates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ledger")
	sig := []byte{1, 2, 3}
	if _, err := Create(dir, sig, 10, 20, Options{}); err == nil {
		t.Fatal("more shards than blocks must be rejected")
	}
	l, err := Create(dir, sig, 10, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Manifest(); got.Blocks != 10 || len(got.Shards) != 3 {
		t.Fatalf("manifest %+v", got)
	}
	// Reopening with the same signature converges on the same ledger;
	// a different signature or shard count is a different run.
	if _, err := Create(dir, sig, 10, 3, Options{}); err != nil {
		t.Fatalf("idempotent create: %v", err)
	}
	if _, err := Create(dir, sig, 10, 5, Options{}); err == nil {
		t.Fatal("shard-count mismatch must be rejected")
	}
	if _, err := Open(dir, []byte{9, 9}, Options{}); err == nil {
		t.Fatal("signature mismatch must be rejected")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "absent"), sig, Options{}); err == nil {
		t.Fatal("opening a non-ledger must fail")
	}
}

// TestLeaseFencing walks the lease state machine on a fake clock: claim,
// renewal, expiry, takeover under a higher token, and the fenced holder's
// journal appends being rejected with core.ErrFenced.
func TestLeaseFencing(t *testing.T) {
	clk := health.NewFake()
	dir := filepath.Join(t.TempDir(), "ledger")
	opt := Options{TTL: time.Minute, Poll: time.Second, Clock: clk}
	l, err := Create(dir, []byte{0xaa}, 4, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := l.man.Shards[0]

	c1, err := l.Acquire(context.Background(), "w1")
	if err != nil {
		t.Fatal(err)
	}
	if c1.Token != 1 || c1.Shard.Index != 0 {
		t.Fatalf("first claim got shard %d token %d", c1.Shard.Index, c1.Token)
	}
	// The lease is live: a second worker cannot claim it.
	if c, err := l.tryClaim(r, "w2"); err != nil || c != nil {
		t.Fatalf("claim of a live lease: claim=%v err=%v", c, err)
	}
	if err := c1.Check(); err != nil {
		t.Fatalf("unfenced claim failed its check: %v", err)
	}
	// Renewal pushes expiry out past what the original TTL allowed.
	clk.Advance(45 * time.Second)
	if err := c1.Renew(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(45 * time.Second) // 90s after claim, but only 45s after renewal
	if c, _ := l.tryClaim(r, "w2"); c != nil {
		t.Fatal("renewed lease was stolen")
	}
	// Expiry: no renewal for a full TTL, and the shard is claimable under
	// the next token.
	clk.Advance(opt.TTL)
	c2, err := l.tryClaim(r, "w2")
	if err != nil || c2 == nil {
		t.Fatalf("expired lease not claimable: claim=%v err=%v", c2, err)
	}
	if c2.Token != 2 {
		t.Fatalf("takeover token %d, want 2", c2.Token)
	}
	// The old holder is fenced: checks, renewals, and journal appends all
	// fail with core.ErrFenced; the new holder is unaffected.
	if err := c1.Check(); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("superseded claim's check: %v", err)
	}
	if err := c1.Renew(); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("superseded claim's renewal: %v", err)
	}
	cp, err := core.OpenCheckpoint(c1.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	cp.Fence = c1.Check
	if err := cp.Append(0, core.BlockOutcome{ID: 42}); !errors.Is(err, core.ErrFenced) {
		t.Fatalf("fenced append: %v", err)
	}
	if err := c2.Renew(); err != nil {
		t.Fatalf("live claim's renewal: %v", err)
	}
	// Done marker retires the shard from acquisition entirely.
	if err := c2.Done(DoneMarker{Analyzed: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(context.Background(), "w3"); !errors.Is(err, ErrAllDone) {
		t.Fatalf("acquire on a finished ledger: %v", err)
	}
}

func TestDeadLetterStore(t *testing.T) {
	s, err := OpenDeadLetters(filepath.Join(t.TempDir(), "dl"))
	if err != nil {
		t.Fatal(err)
	}
	id := netsim.BlockID(0x123456)
	if _, ok := s.Lookup(3, id); ok {
		t.Fatal("lookup hit on an empty store")
	}
	if err := s.Record(3, id, errors.New("panic: poison")); err != nil {
		t.Fatal(err)
	}
	reason, ok := s.Lookup(3, id)
	if !ok || reason != "panic: poison" {
		t.Fatalf("lookup after record: %q %v", reason, ok)
	}
	// First write wins: a second give-up (even with a different message)
	// keeps the original entry.
	if err := s.Record(3, id, errors.New("different message")); err != nil {
		t.Fatal(err)
	}
	if reason, _ := s.Lookup(3, id); reason != "panic: poison" {
		t.Fatalf("record overwrote the first entry: %q", reason)
	}
	// A scoped view shifts local indices by the shard base and stamps the
	// recorder.
	scoped := s.Scoped(10, "w2", 4)
	if err := scoped.Record(1, 99, errors.New("deadline exceeded")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(11, 99); !ok {
		t.Fatal("scoped record not visible at its global index")
	}
	if _, ok := scoped.Lookup(1, 99); !ok {
		t.Fatal("scoped lookup missed its own record")
	}
	entries, faults := s.Entries()
	if len(faults) != 0 {
		t.Fatalf("faults on a healthy store: %v", faults)
	}
	if len(entries) != 2 || entries[0].Index != 3 || entries[1].Index != 11 {
		t.Fatalf("entries %+v", entries)
	}
	if entries[0].Kind != "other" || entries[1].Kind != "timeout" {
		t.Fatalf("kinds %q %q", entries[0].Kind, entries[1].Kind)
	}
	if entries[1].Worker != "w2" || entries[1].Token != 4 {
		t.Fatalf("scoped entry lost its recorder: %+v", entries[1])
	}
}

// TestShardedRunMatchesSingleProcess is the package's core contract: N
// workers draining a sharded ledger — with a block quarantined up front —
// merge to a result byte-identical (by fingerprint) to one process running
// the whole world with the same quarantine.
func TestShardedRunMatchesSingleProcess(t *testing.T) {
	world := testWorld(t, 36, 77)
	cfg := testConfig()
	eng := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	sig := core.RunSignature(cfg, world)
	l, err := Create(filepath.Join(t.TempDir(), "ledger"), sig, len(world), 3,
		Options{TTL: 10 * time.Second, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Quarantine one responsive block before anyone runs: both the
	// single-process reference and every worker must skip it identically.
	poisoned := -1
	for i, wb := range world {
		if len(wb.Block.EverActive()) > 0 {
			poisoned = i
			break
		}
	}
	if poisoned < 0 {
		t.Fatal("world has no responsive blocks")
	}
	if err := l.DeadLetters().Record(poisoned, world[poisoned].ID, errors.New("panic: injected poison")); err != nil {
		t.Fatal(err)
	}

	single, err := (&core.Pipeline{Config: cfg, Engine: eng, DeadLetter: l.DeadLetters()}).
		Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	reports := make([]*Report, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{ID: fmt.Sprintf("w%d", i), Ledger: l, Config: cfg, Engine: eng, World: world}
			reports[i], errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	done := 0
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		done += len(reports[i].CompletedShards)
	}
	if done != 3 {
		t.Fatalf("workers completed %d shards, want 3", done)
	}

	merged, audit, err := l.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean() {
		t.Fatalf("audit failed:\n%s", audit)
	}
	if audit.DuplicateFrames != 0 {
		t.Fatalf("%d duplicate frames in a fault-free run", audit.DuplicateFrames)
	}
	if audit.DeadLetters != 1 {
		t.Fatalf("audit saw %d dead letters, want 1", audit.DeadLetters)
	}
	if audit.DoneShards != 3 || len(audit.IncompleteShards) != 0 {
		t.Fatalf("audit shard completion: %+v", audit)
	}
	got, err := merged.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("merged fingerprint %s != single-process %s\naudit: %s", got[:16], want[:16], audit)
	}
	if len(merged.Report.DeadLettered) != 1 || merged.Report.DeadLettered[0].Index != poisoned {
		t.Fatalf("merged dead-letter report %+v", merged.Report.DeadLettered)
	}
	if !merged.Report.Degraded() {
		t.Fatal("a run with dead letters must report degraded")
	}
}
