package shard

// Lease acquisition and fencing. A claim is the atomic creation of
// shard-NNNN.tTTTTTT.lease for the next unused token: the lease body is
// written to a temp file and link(2)ed to its final name, so creation is
// both exclusive (EEXIST if another worker won the race) and complete
// (readers never see a partial JSON body). Renewal replaces the holder's
// own file via rename, which cannot race a claim because claims only ever
// create *new* token names.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// leaseRecord is the JSON body of a lease file.
type leaseRecord struct {
	Shard   int    `json:"shard"`
	Token   uint64 `json:"token"`
	Worker  string `json:"worker"`
	Expires int64  `json:"expires_unix_nano"`
}

// Claim is a held lease on one shard under one fencing token.
type Claim struct {
	Shard  Range
	Token  uint64
	Worker string

	ledger *Ledger
	path   string
}

// JournalPath is the checkpoint journal this claim must write to. The
// token is baked into the name, so a fenced worker's late appends land in
// its own (superseded) journal, never in the new holder's.
func (c *Claim) JournalPath() string {
	return c.ledger.journalPath(c.Shard.Index, c.Token)
}

// ErrAllDone is returned by Acquire when every shard has a completion
// marker: there is nothing left to claim, ever.
var ErrAllDone = errors.New("shard: all shards complete")

// Acquire blocks until it claims some shard whose lease is absent or
// expired, returning ErrAllDone once every shard is done or ctx's error
// if cancelled first. Shards are scanned in index order, so concurrent
// workers spread out naturally: each claim bumps the loser to the next
// unclaimed shard.
func (l *Ledger) Acquire(ctx context.Context, worker string) (*Claim, error) {
	for {
		allDone := true
		for _, r := range l.man.Shards {
			if _, ok := l.done(r.Index); ok {
				continue
			}
			allDone = false
			c, err := l.tryClaim(r, worker)
			if err == nil && c != nil {
				return c, nil
			}
			if err != nil {
				return nil, err
			}
		}
		if allDone {
			return nil, ErrAllDone
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-l.clock.After(l.poll):
		}
	}
}

// tryClaim attempts one claim on r. It returns (nil, nil) when the shard
// is currently held or another worker won the race — both mean "move on".
func (l *Ledger) tryClaim(r Range, worker string) (*Claim, error) {
	leases, err := l.tokenFiles(r.Index, "lease")
	if err != nil {
		return nil, err
	}
	var top uint64
	if n := len(leases); n > 0 {
		top = leases[n-1].Token
		rec, err := readLease(leases[n-1].Path)
		// An unreadable top lease means a renewal rename is in flight;
		// treat it as held and retry on the next poll.
		if err != nil {
			return nil, nil
		}
		if rec.Expires > l.clock.Now().UnixNano() {
			return nil, nil
		}
	}
	token := top + 1
	rec := leaseRecord{
		Shard:   r.Index,
		Token:   token,
		Worker:  worker,
		Expires: l.clock.Now().Add(l.ttl).UnixNano(),
	}
	path := l.leasePath(r.Index, token)
	switch err := createExclusive(path, &rec); {
	case err == nil:
		return &Claim{Shard: r, Token: token, Worker: worker, ledger: l, path: path}, nil
	case errors.Is(err, fs.ErrExist):
		return nil, nil // lost the race for this token
	default:
		return nil, fmt.Errorf("shard: claiming shard %d: %w", r.Index, err)
	}
}

// Check reports whether this claim has been fenced: a lease file with a
// higher token exists, meaning the ledger considers this claim dead and
// has reassigned the shard. Wire it as the journal's Fence hook.
func (c *Claim) Check() error {
	leases, err := c.ledger.tokenFiles(c.Shard.Index, "lease")
	if err != nil {
		return err
	}
	for _, lf := range leases {
		if lf.Token > c.Token {
			return fmt.Errorf("shard %d token %d superseded by token %d: %w",
				c.Shard.Index, c.Token, lf.Token, core.ErrFenced)
		}
	}
	return nil
}

// Renew extends the lease by the ledger's TTL, failing with core.ErrFenced
// if the claim has been superseded. The holder rewrites its own lease file
// atomically; no other process writes that name.
func (c *Claim) Renew() error {
	if err := c.Check(); err != nil {
		return err
	}
	rec := leaseRecord{
		Shard:   c.Shard.Index,
		Token:   c.Token,
		Worker:  c.Worker,
		Expires: c.ledger.clock.Now().Add(c.ledger.ttl).UnixNano(),
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	err = writeFileAtomic(c.path, func(f storage.File) error {
		_, err := f.Write(data)
		return err
	})
	if err != nil {
		return fmt.Errorf("shard: renewing shard %d token %d: %w", c.Shard.Index, c.Token, err)
	}
	return nil
}

// Done marks the shard complete. The marker is written atomically and is
// the merge step's signal that the shard's journals cover its full range.
func (c *Claim) Done(m DoneMarker) error {
	m.Shard = c.Shard.Index
	m.Token = c.Token
	m.Worker = c.Worker
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	err = writeFileAtomic(c.ledger.donePath(c.Shard.Index), func(f storage.File) error {
		_, err := f.Write(data)
		return err
	})
	if err != nil {
		return fmt.Errorf("shard: marking shard %d done: %w", c.Shard.Index, err)
	}
	return nil
}

func readLease(path string) (*leaseRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec leaseRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// createExclusive writes rec to path such that the file appears atomically
// with its full body, and fails with fs.ErrExist if path already exists:
// the body goes to a temp file first, then link(2) publishes it under the
// final name (hard links fail on existing targets, unlike rename).
func createExclusive(path string, rec *leaseRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".claim*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Link(tmp.Name(), path); err != nil {
		return err
	}
	// The new directory entry lives in the parent's blocks; without this
	// fsync a crash could forget a lease another worker already observed.
	return storage.OS.SyncDir(filepath.Dir(path))
}
