// Package shard lets several worker processes share one world run safely.
//
// The paper's pipeline covers ~5.2M /24 blocks per quarter — far beyond
// what a single process should own. This package partitions a world into
// contiguous block-range shards recorded in a durable, file-based ledger;
// workers claim shards under time-bounded leases with monotonic fencing
// tokens, journal per-shard progress through core's checkpoint machinery,
// and quarantine poison blocks into a dead-letter store instead of
// stalling on them. A final merge step stitches every shard's journals
// into one WorldResult and runs a cross-shard integrity audit before the
// run may be declared complete.
//
// The ledger is a directory:
//
//	manifest.json            run signature, world size, shard ranges
//	shard-0003.t000002.lease lease for shard 3 under fencing token 2
//	shard-0003.t000002.ckpt  that leaseholder's checkpoint journal
//	shard-0003.done          completion marker (atomic, written last)
//	deadletter/              quarantined poison blocks (one file each)
//
// Fencing: a shard's lease carries a token that only ever increases. A
// claim is the atomic creation (via link(2)) of the next token's lease
// file; renewal rewrites the holder's own file in place. A worker whose
// lease expired and was reclaimed is *fenced* — its next journal append
// or renewal fails with core.ErrFenced, because a lease file with a
// higher token now exists. Each token writes its own journal, so even a
// write that races the fence check lands in the fenced token's file,
// where the merge step's token-precedence rules reject it; late writes
// are rejected, never duplicated into the merged result.
package shard

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/storage"
)

const manifestName = "manifest.json"

// Range is one shard's half-open slice [Start, End) of the world's block
// indices.
type Range struct {
	Index int `json:"index"`
	Start int `json:"start"`
	End   int `json:"end"`
}

// Manifest binds a ledger to one run: the (config, world) signature, the
// world size, and the shard partition. It is written once, atomically,
// when the ledger is created.
type Manifest struct {
	Signature string  `json:"signature"`
	Blocks    int     `json:"blocks"`
	Shards    []Range `json:"shards"`
}

// Options tunes a ledger's lease machinery. Zero values take defaults.
type Options struct {
	// TTL is the lease duration (default 30s). A worker renews at TTL/3;
	// a lease not renewed within TTL is expired and claimable.
	TTL time.Duration
	// Poll is how often a worker with nothing claimable rescans the
	// ledger (default TTL/4).
	Poll time.Duration
	// Clock injects time for lease expiry and polling (default wall
	// clock).
	Clock health.Clock
}

// Ledger is an open shard ledger. All methods are safe for concurrent use
// from multiple goroutines and multiple processes sharing the directory.
type Ledger struct {
	dir   string
	man   Manifest
	ttl   time.Duration
	poll  time.Duration
	clock health.Clock
	dead  *DeadLetterStore
}

// partition splits blocks into n contiguous ranges whose sizes differ by
// at most one.
func partition(blocks, n int) []Range {
	out := make([]Range, 0, n)
	base, rem, start := blocks/n, blocks%n, 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Range{Index: i, Start: start, End: start + size})
		start += size
	}
	return out
}

// Create creates the ledger at dir for a run with the given signature
// (core.RunSignature of the config and world), world size, and shard
// count — or opens it, if a compatible ledger already exists. Two workers
// racing to create the same ledger converge: the manifest is a pure
// function of (sig, blocks, shards), so whichever rename lands last wrote
// identical bytes.
func Create(dir string, sig []byte, blocks, shards int, opt Options) (*Ledger, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("shard: world of %d blocks", blocks)
	}
	if shards <= 0 || shards > blocks {
		return nil, fmt.Errorf("shard: %d shards for %d blocks (need 1..%d)", shards, blocks, blocks)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating ledger dir: %w", err)
	}
	l, err := Open(dir, sig, opt)
	if err == nil {
		if got := len(l.man.Shards); got != shards {
			return nil, fmt.Errorf("shard: ledger %s has %d shards, not %d; delete it to repartition", dir, got, shards)
		}
		return l, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	man := Manifest{Signature: hex.EncodeToString(sig), Blocks: blocks, Shards: partition(blocks, shards)}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return nil, err
	}
	err = writeFileAtomic(filepath.Join(dir, manifestName), func(f storage.File) error {
		_, err := f.Write(data)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("shard: writing manifest: %w", err)
	}
	return Open(dir, sig, opt)
}

// Open opens an existing ledger and verifies it belongs to this run. A
// missing manifest surfaces as fs.ErrNotExist.
func Open(dir string, sig []byte, opt Options) (*Ledger, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("shard: %s is not a ledger: %w", dir, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest: %w", err)
	}
	if want := hex.EncodeToString(sig); man.Signature != want {
		return nil, fmt.Errorf("shard: ledger %s belongs to a different run (config or world changed); delete it to start over", dir)
	}
	ttl := opt.TTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	poll := opt.Poll
	if poll <= 0 {
		poll = ttl / 4
	}
	clock := opt.Clock
	if clock == nil {
		clock = health.System
	}
	dead, err := OpenDeadLetters(filepath.Join(dir, "deadletter"))
	if err != nil {
		return nil, err
	}
	return &Ledger{dir: dir, man: man, ttl: ttl, poll: poll, clock: clock, dead: dead}, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Manifest returns a copy of the ledger's manifest.
func (l *Ledger) Manifest() Manifest {
	man := l.man
	man.Shards = append([]Range(nil), l.man.Shards...)
	return man
}

// DeadLetters returns the ledger's quarantine store.
func (l *Ledger) DeadLetters() *DeadLetterStore { return l.dead }

// leasePath and journalPath name a shard's per-token files; donePath names
// its completion marker.
func (l *Ledger) leasePath(shard int, token uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("shard-%04d.t%06d.lease", shard, token))
}

func (l *Ledger) journalPath(shard int, token uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("shard-%04d.t%06d.ckpt", shard, token))
}

func (l *Ledger) donePath(shard int) string {
	return filepath.Join(l.dir, fmt.Sprintf("shard-%04d.done", shard))
}

// tokenFile is one per-token artifact (lease or journal) found on disk.
type tokenFile struct {
	Token uint64
	Path  string
}

// tokenFiles lists a shard's files with the given extension ("lease" or
// "ckpt"), ascending by token.
func (l *Ledger) tokenFiles(shard int, ext string) ([]tokenFile, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("shard: listing ledger: %w", err)
	}
	var out []tokenFile
	pattern := fmt.Sprintf("shard-%04d.t", shard)
	for _, e := range entries {
		name := e.Name()
		var s int
		var tok uint64
		if _, err := fmt.Sscanf(name, "shard-%d.t%d."+ext, &s, &tok); err != nil || s != shard {
			continue
		}
		if name != fmt.Sprintf("shard-%04d.t%06d.%s", s, tok, ext) {
			continue // a stray file that merely parses
		}
		_ = pattern
		out = append(out, tokenFile{Token: tok, Path: filepath.Join(l.dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out, nil
}

// DoneMarker records a shard's completion: who finished it, under which
// fencing token, and what the run produced.
type DoneMarker struct {
	Shard        int    `json:"shard"`
	Token        uint64 `json:"token"`
	Worker       string `json:"worker"`
	Analyzed     int    `json:"analyzed"`
	Resumed      int    `json:"resumed"`
	DeadLettered int    `json:"dead_lettered"`
}

// done returns the shard's completion marker, if one is readable.
func (l *Ledger) done(shard int) (*DoneMarker, bool) {
	data, err := os.ReadFile(l.donePath(shard))
	if err != nil {
		return nil, false
	}
	var m DoneMarker
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false
	}
	return &m, true
}

// writeFileAtomic writes data to path through the shared storage
// discipline (temp file, write, fsync, rename, parent-directory fsync)
// — same contract as the dataset store, so readers never observe a torn
// file under a final name and the rename itself is crash-durable.
func writeFileAtomic(path string, write func(f storage.File) error) error {
	return storage.WriteFileAtomic(storage.OS, path, write)
}

// Clean garbage-collects the ledger's reclaimable artifacts: superseded
// lease files (every token below a live shard's top), all leases of
// completed shards, and temp litter older than the lease TTL left by
// crashed claimers and renamers (.claim* and *.tmp* files). Checkpoint
// journals are never removed — the merge step reads every token's
// journal to apply its precedence rules — and a live shard's top lease
// is the fence, so it is never touched either. Clean returns the names
// it removed and is safe to run concurrently with active workers.
func (l *Ledger) Clean() ([]string, error) {
	var removed []string
	for _, r := range l.man.Shards {
		leases, err := l.tokenFiles(r.Index, "lease")
		if err != nil {
			return removed, err
		}
		if len(leases) == 0 {
			continue
		}
		_, isDone := l.done(r.Index)
		top := len(leases) - 1
		for i, lf := range leases {
			if !isDone && i == top {
				continue
			}
			if err := os.Remove(lf.Path); err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue
				}
				return removed, fmt.Errorf("shard: cleaning lease %s: %w", lf.Path, err)
			}
			removed = append(removed, filepath.Base(lf.Path))
		}
	}
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return removed, fmt.Errorf("shard: listing ledger: %w", err)
	}
	// Temp litter younger than the TTL may belong to a claim or rename
	// still in flight; only aged litter is provably abandoned.
	cutoff := l.clock.Now().Add(-l.ttl)
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() {
			continue
		}
		if !strings.HasPrefix(name, ".claim") && !strings.Contains(name, ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err == nil {
			removed = append(removed, name)
		}
	}
	return removed, nil
}
