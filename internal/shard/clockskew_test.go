package shard

// Lease correctness under clock skew. Lease expiry is compared against
// wall clocks that different workers read independently, so a worker with
// broken NTP is the realistic threat: a skewed-but-renewing worker must
// never be fenced out from under its live lease, a crashed worker's lease
// must expire on schedule no matter how skewed the writer was, and a
// worker whose clock steps backward must discover its self-inflicted
// fencing through Check instead of journaling blindly.

import (
	"errors"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/health"
)

const skewTTL = 30 * time.Second

// skewLedger opens a second handle on an existing ledger directory with
// its own (skewed) clock, modeling a different machine.
func skewLedger(t *testing.T, dir string, sig []byte, clock health.Clock) *Ledger {
	t.Helper()
	l, err := Open(dir, sig, Options{TTL: skewTTL, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSkewedWorkerNeverWronglyFenced: a worker whose clock is off by a
// constant offset and a rate error, but which renews on schedule, holds
// its lease indefinitely against a true-clocked rival.
func TestSkewedWorkerNeverWronglyFenced(t *testing.T) {
	for _, tc := range []struct {
		name   string
		offset time.Duration
		drift  float64
	}{
		{"slow", -skewTTL / 3, 0},
		{"fast", skewTTL / 3, 0},
		{"slow-drifting", -5 * time.Second, -1e-3},
		{"fast-drifting", 5 * time.Second, 1e-3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sig := []byte("skew-test")
			base := health.NewFake()
			truth, err := Create(dir, sig, 4, 2, Options{TTL: skewTTL, Clock: base})
			if err != nil {
				t.Fatal(err)
			}
			skewed := skewLedger(t, dir, sig, &faults.Clock{Base: base, Offset: tc.offset, Drift: tc.drift})
			claim, err := skewed.tryClaim(skewed.man.Shards[0], "skewed")
			if err != nil || claim == nil {
				t.Fatalf("initial claim: %v, %v", claim, err)
			}
			// Renew at the worker's TTL/3 cadence for many cycles; the
			// rival scans between every renewal.
			for i := 0; i < 30; i++ {
				base.Advance(skewTTL / 3)
				if rival, err := truth.tryClaim(truth.man.Shards[0], "truth"); err != nil || rival != nil {
					t.Fatalf("cycle %d: live skewed lease was claimed by rival (%v, %v)", i, rival, err)
				}
				if err := claim.Check(); err != nil {
					t.Fatalf("cycle %d: live skewed worker fenced: %v", i, err)
				}
				if err := claim.Renew(); err != nil {
					t.Fatalf("cycle %d: renew failed: %v", i, err)
				}
			}
		})
	}
}

// TestExpiredLeaseAlwaysFenced: a crashed worker's lease expires and is
// taken over regardless of the skew it wrote its expiry with, and the
// ghost discovers the fencing through Check and Renew.
func TestExpiredLeaseAlwaysFenced(t *testing.T) {
	for _, tc := range []struct {
		name   string
		offset time.Duration
	}{
		{"slow-writer", -10 * time.Second},
		{"true-writer", 0},
		{"fast-writer", 10 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sig := []byte("skew-test")
			base := health.NewFake()
			truth, err := Create(dir, sig, 4, 2, Options{TTL: skewTTL, Clock: base})
			if err != nil {
				t.Fatal(err)
			}
			skewed := skewLedger(t, dir, sig, &faults.Clock{Base: base, Offset: tc.offset})
			ghost, err := skewed.tryClaim(skewed.man.Shards[0], "ghost")
			if err != nil || ghost == nil {
				t.Fatalf("initial claim: %v, %v", ghost, err)
			}
			// The ghost wrote Expires = skewedNow + TTL, i.e. offset + TTL
			// in true time. One second before that: no takeover.
			base.Advance(skewTTL + tc.offset - time.Second)
			if rival, err := truth.tryClaim(truth.man.Shards[0], "truth"); err != nil || rival != nil {
				t.Fatalf("unexpired lease claimed early (%v, %v)", rival, err)
			}
			// Past the skewed expiry: the takeover must happen.
			base.Advance(2 * time.Second)
			rival, err := truth.tryClaim(truth.man.Shards[0], "truth")
			if err != nil || rival == nil {
				t.Fatalf("expired lease not claimed (%v, %v)", rival, err)
			}
			if rival.Token <= ghost.Token {
				t.Fatalf("takeover token %d not above ghost token %d", rival.Token, ghost.Token)
			}
			if err := ghost.Check(); !errors.Is(err, core.ErrFenced) {
				t.Errorf("ghost Check = %v, want ErrFenced", err)
			}
			if err := ghost.Renew(); !errors.Is(err, core.ErrFenced) {
				t.Errorf("ghost Renew = %v, want ErrFenced", err)
			}
		})
	}
}

// TestBackwardJumpSelfFences: a worker whose clock steps backward writes
// an already-expired renewal; it loses the shard (correct — its expiry
// promise is broken) but must learn that through Check, which is exactly
// the journal Fence hook's consultation point.
func TestBackwardJumpSelfFences(t *testing.T) {
	dir := t.TempDir()
	sig := []byte("skew-test")
	base := health.NewFake()
	truth, err := Create(dir, sig, 4, 2, Options{TTL: skewTTL, Clock: base})
	if err != nil {
		t.Fatal(err)
	}
	jumpy := skewLedger(t, dir, sig, &faults.Clock{
		Base:  base,
		Jumps: []faults.Jump{{After: 15 * time.Second, Delta: -2 * time.Minute}},
	})
	claim, err := jumpy.tryClaim(jumpy.man.Shards[0], "jumpy")
	if err != nil || claim == nil {
		t.Fatalf("initial claim: %v, %v", claim, err)
	}
	base.Advance(10 * time.Second) // pre-jump: renewal is healthy
	if err := claim.Renew(); err != nil {
		t.Fatal(err)
	}
	if rival, err := truth.tryClaim(truth.man.Shards[0], "truth"); err != nil || rival != nil {
		t.Fatalf("healthy lease claimed (%v, %v)", rival, err)
	}
	base.Advance(10 * time.Second) // jump fires: the clock is now 2 min behind
	if err := claim.Renew(); err != nil {
		t.Fatal(err) // renewal succeeds but writes an expiry in the past
	}
	rival, err := truth.tryClaim(truth.man.Shards[0], "truth")
	if err != nil || rival == nil {
		t.Fatalf("backdated lease not claimable (%v, %v)", rival, err)
	}
	if err := claim.Check(); !errors.Is(err, core.ErrFenced) {
		t.Errorf("jumped worker Check = %v, want ErrFenced so late appends are blocked", err)
	}
}
