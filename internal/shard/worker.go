package shard

// Worker is one process's claim-analyze-complete loop. It acquires shards
// from the ledger, runs core.Pipeline over each shard's block slice with
// the lease wired in as the journal fence, renews the lease on a
// heartbeat, and marks shards done. Crash semantics are deliberate: on
// any failure the worker simply stops — the lease is never released, it
// expires, and the next claimant takes over under a higher fencing token,
// seeding its journal with every frame the dead worker managed to write.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
)

// Worker drains a ledger's shards. Configure the pipeline-shaping fields
// exactly as for a single-process core.Pipeline; the worker constructs
// one pipeline per claimed shard.
type Worker struct {
	// ID names this worker in leases, done markers, and dead letters.
	// Defaults to "worker-<pid>".
	ID string
	// Ledger is the shared shard ledger.
	Ledger *Ledger
	// Config and Engine are the analysis configuration and prober, as in
	// core.Pipeline. The full world (not a slice) is provided; the worker
	// slices it per claimed shard.
	Config core.Config
	Engine core.Prober
	World  []*dataset.WorldBlock
	// Workers bounds per-shard pipeline parallelism (default GOMAXPROCS).
	Workers int
	// BlockTimeout and MaxRetries pass through to the per-shard pipeline.
	BlockTimeout time.Duration
	MaxRetries   int
	// RenewGate, when non-nil, is consulted before each lease renewal; a
	// false return skips it. Tests install faults.LeaseStall here to
	// simulate a worker that computes on while its lease rots.
	RenewGate func() bool
}

// Report summarizes one worker's whole run.
type Report struct {
	// CompletedShards lists shard indices this worker finished.
	CompletedShards []int
	// Fenced counts shards abandoned because the lease was reassigned
	// mid-run (their partial journals remain for the merge).
	Fenced int
	// Analyzed, Resumed, and DeadLettered total the per-shard pipeline
	// reports; Resumed counts blocks seeded from earlier tokens' journals.
	Analyzed, Resumed, DeadLettered int
}

// Run claims and processes shards until every shard is done (nil error),
// ctx is cancelled, or a non-fencing error occurs. Being fenced is not an
// error: the worker abandons that shard and claims another.
func (w *Worker) Run(ctx context.Context) (*Report, error) {
	if w.Ledger == nil {
		return nil, errors.New("shard: worker has no ledger")
	}
	if len(w.World) != w.Ledger.man.Blocks {
		return nil, fmt.Errorf("shard: world has %d blocks, ledger expects %d", len(w.World), w.Ledger.man.Blocks)
	}
	id := w.ID
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	rep := &Report{}
	for {
		claim, err := w.Ledger.Acquire(ctx, id)
		if errors.Is(err, ErrAllDone) {
			return rep, nil
		}
		if err != nil {
			return rep, err
		}
		switch err := w.runShard(ctx, claim, rep); {
		case err == nil:
			rep.CompletedShards = append(rep.CompletedShards, claim.Shard.Index)
		case errors.Is(err, core.ErrFenced):
			rep.Fenced++ // someone else owns the shard now; move on
		default:
			return rep, err
		}
	}
}

// runShard processes one claimed shard end to end.
func (w *Worker) runShard(ctx context.Context, claim *Claim, rep *Report) error {
	l := w.Ledger
	r := claim.Shard
	sub := w.World[r.Start:r.End]
	cp, err := core.OpenCheckpoint(claim.JournalPath())
	if err != nil {
		return err
	}
	defer cp.Close()
	cp.Fence = claim.Check
	// Seed this token's journal with every frame earlier tokens wrote:
	// work done under a dead lease is kept, not redone, and not
	// re-journaled — the merge reads all tokens' journals directly.
	wantSig := core.RunSignature(w.Config, sub)
	journals, err := l.tokenFiles(r.Index, "ckpt")
	if err != nil {
		return err
	}
	for _, jf := range journals {
		if jf.Token >= claim.Token {
			continue
		}
		sig, entries, _, err := core.ReadCheckpoint(jf.Path)
		if err != nil || !bytes.Equal(sig, wantSig) {
			continue // unreadable or foreign journal: the blocks just get re-analyzed
		}
		for _, e := range entries {
			cp.SeedPrior(e.Index, e.Outcome)
		}
	}
	// The renewal heartbeat runs at TTL/3 and cancels the shard's context
	// (with the fencing error as cause) the moment a renewal fails, so the
	// pipeline stops probing a shard this worker no longer owns.
	shardCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	heartbeatDone := make(chan struct{})
	go func() {
		defer close(heartbeatDone)
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-l.clock.After(l.ttl / 3):
			}
			if w.RenewGate != nil && !w.RenewGate() {
				continue // stalled: skip this renewal, keep computing
			}
			if err := claim.Renew(); err != nil {
				cancel(err)
				return
			}
		}
	}()
	pipe := &core.Pipeline{
		Config:       w.Config,
		Engine:       w.Engine,
		Workers:      w.Workers,
		BlockTimeout: w.BlockTimeout,
		MaxRetries:   w.MaxRetries,
		Checkpoint:   cp,
		DeadLetter:   l.dead.Scoped(r.Start, claim.Worker, claim.Token),
		Clock:        l.clock,
	}
	res, runErr := pipe.Run(shardCtx, sub)
	cancel(nil)
	<-heartbeatDone
	// An all-dead-lettered *world* is a failed run, but an all-dead-lettered
	// *shard* is just an unlucky slice: every block is durably accounted
	// for, so the shard is complete.
	if runErr != nil && res != nil && res.Report != nil &&
		ctx.Err() == nil && len(res.Report.BlockErrors) == 0 &&
		res.Report.AnalyzedBlocks+len(res.Report.DeadLettered) == len(sub) &&
		!errors.Is(runErr, core.ErrFenced) &&
		!errors.Is(context.Cause(shardCtx), core.ErrFenced) {
		runErr = nil
	}
	if runErr != nil {
		// Fencing surfaces two ways: the journal's fence hook rejecting an
		// append, or the heartbeat cancelling the context with the renewal
		// error as cause. Either way the shard belongs to someone else.
		if errors.Is(runErr, core.ErrFenced) {
			return runErr
		}
		if cause := context.Cause(shardCtx); cause != nil && errors.Is(cause, core.ErrFenced) {
			return cause
		}
		return runErr
	}
	if err := cp.Close(); err != nil {
		return fmt.Errorf("shard: closing journal for shard %d: %w", r.Index, err)
	}
	rep.Analyzed += res.Report.AnalyzedBlocks
	rep.Resumed += res.Report.ResumedBlocks
	rep.DeadLettered += len(res.Report.DeadLettered)
	return claim.Done(DoneMarker{
		Analyzed:     res.Report.AnalyzedBlocks,
		Resumed:      res.Report.ResumedBlocks,
		DeadLettered: len(res.Report.DeadLettered),
	})
}
