package shard

// Dead-letter quarantine. A block that exhausts the pipeline's retry
// budget — a deterministic panic, a per-block timeout, a corrupt store
// record — would otherwise fail every takeover attempt and pin its shard
// forever. Instead it is quarantined here with its fault context, the
// pipeline records it in RunReport.DeadLettered, and the run proceeds.
//
// The store follows the dataset package's durability discipline: one file
// per entry, JSON payload wrapped with a CRC32C trailer, written to a
// temp file and renamed into place. The filename is a pure function of
// (global block index, block ID), so concurrent workers that both give up
// on the same block converge on one manifest entry: the first complete
// write wins and later Record calls become no-ops. That is the
// exactly-once property the merge audit checks.

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// DeadLetterEntry is one quarantined block.
type DeadLetterEntry struct {
	// Index is the block's global index in the world.
	Index int `json:"index"`
	// ID is the block's /24 identity.
	ID netsim.BlockID `json:"id"`
	// CIDR is ID rendered for humans; ignored on read.
	CIDR string `json:"cidr"`
	// Reason is the final error's message, verbatim. It must be
	// deterministic across processes: the merged result's fingerprint
	// incorporates it.
	Reason string `json:"reason"`
	// Kind classifies the fault: "panic", "timeout", "corrupt",
	// "transient", or "other".
	Kind string `json:"kind"`
	// Worker and Token record who quarantined the block, when known.
	Worker string `json:"worker,omitempty"`
	Token  uint64 `json:"token,omitempty"`
}

// deadLetterFile is the on-disk envelope: payload plus CRC32C (Castagnoli,
// matching the dataset store) over the payload's JSON bytes.
type deadLetterFile struct {
	Payload json.RawMessage `json:"payload"`
	CRC32C  uint32          `json:"crc32c"`
}

var dlTable = crc32.MakeTable(crc32.Castagnoli)

// DeadLetterStore is a directory of quarantined blocks. It implements
// core.DeadLetterer directly (global indices); Scoped derives a view for
// one shard's local indices. Safe for concurrent use; cross-process
// safety comes from atomic first-write-wins file creation.
type DeadLetterStore struct {
	dir string

	mu    sync.Mutex
	cache map[string]string // filename -> reason, for Lookup fast path
}

// OpenDeadLetters opens (creating if needed) a quarantine directory.
func OpenDeadLetters(dir string) (*DeadLetterStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating dead-letter dir: %w", err)
	}
	return &DeadLetterStore{dir: dir, cache: make(map[string]string)}, nil
}

// Dir returns the quarantine directory.
func (s *DeadLetterStore) Dir() string { return s.dir }

func dlName(index int, id netsim.BlockID) string {
	return fmt.Sprintf("dl-%06d-%06x.json", index, uint32(id))
}

// Lookup reports whether the block at the given global index is
// quarantined, and if so with what reason. Implements core.DeadLetterer.
func (s *DeadLetterStore) Lookup(index int, id netsim.BlockID) (string, bool) {
	name := dlName(index, id)
	s.mu.Lock()
	if reason, ok := s.cache[name]; ok {
		s.mu.Unlock()
		return reason, true
	}
	s.mu.Unlock()
	e, err := readDeadLetter(filepath.Join(s.dir, name))
	if err != nil {
		return "", false // absent or corrupt; Record may heal the latter
	}
	s.mu.Lock()
	s.cache[name] = e.Reason
	s.mu.Unlock()
	return e.Reason, true
}

// Record quarantines the block at the given global index. Implements
// core.DeadLetterer. An existing valid entry wins; Record then keeps it
// untouched and succeeds, so repeated give-ups across workers stay
// exactly-once in the manifest.
func (s *DeadLetterStore) Record(index int, id netsim.BlockID, cause error) error {
	return s.record(index, id, cause, "", 0)
}

func (s *DeadLetterStore) record(index int, id netsim.BlockID, cause error, worker string, token uint64) error {
	if cause == nil {
		return errors.New("shard: dead-lettering with nil cause")
	}
	name := dlName(index, id)
	path := filepath.Join(s.dir, name)
	if _, err := readDeadLetter(path); err == nil {
		return nil // first write won; this one is a duplicate give-up
	}
	e := DeadLetterEntry{
		Index:  index,
		ID:     id,
		CIDR:   id.String(),
		Reason: cause.Error(),
		Kind:   classify(cause),
		Worker: worker,
		Token:  token,
	}
	payload, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	// Plain Marshal: the envelope must embed the payload bytes verbatim
	// (indentation would rewrite them and break the checksum).
	envelope, err := json.Marshal(&deadLetterFile{
		Payload: payload,
		CRC32C:  crc32.Checksum(payload, dlTable),
	})
	if err != nil {
		return err
	}
	err = writeFileAtomic(path, func(f storage.File) error {
		_, err := f.Write(envelope)
		return err
	})
	if err != nil {
		return fmt.Errorf("shard: dead-lettering block %s: %w", id, err)
	}
	s.mu.Lock()
	s.cache[name] = e.Reason
	s.mu.Unlock()
	return nil
}

// classify buckets a fault for the manifest. Best effort: the reason
// string always carries the full error.
func classify(err error) string {
	var p *core.PanicError
	switch {
	case errors.As(err, &p):
		return "panic"
	case strings.Contains(err.Error(), "deadline exceeded"):
		return "timeout"
	case errors.Is(err, dataset.ErrCorruptLog):
		return "corrupt"
	case core.IsTransient(err):
		return "transient"
	default:
		return "other"
	}
}

// Entries reads the full quarantine manifest, sorted by global index.
// Unreadable or checksum-failing files do not hide the rest: they are
// returned as faults alongside every valid entry, for the merge audit.
func (s *DeadLetterStore) Entries() (entries []DeadLetterEntry, faults []error) {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, []error{fmt.Errorf("shard: listing dead letters: %w", err)}
	}
	for _, de := range dirents {
		name := de.Name()
		if !strings.HasPrefix(name, "dl-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		e, err := readDeadLetter(filepath.Join(s.dir, name))
		if err != nil {
			faults = append(faults, fmt.Errorf("dead letter %s: %w", name, err))
			continue
		}
		if name != dlName(e.Index, e.ID) {
			faults = append(faults, fmt.Errorf("dead letter %s: payload names block %d/%s", name, e.Index, e.ID))
			continue
		}
		entries = append(entries, *e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Index < entries[j].Index })
	return entries, faults
}

func readDeadLetter(path string) (*DeadLetterEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env deadLetterFile
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("decoding envelope: %w", err)
	}
	if got := crc32.Checksum(env.Payload, dlTable); got != env.CRC32C {
		return nil, fmt.Errorf("checksum mismatch: payload %08x, trailer %08x", got, env.CRC32C)
	}
	var e DeadLetterEntry
	if err := json.Unmarshal(env.Payload, &e); err != nil {
		return nil, fmt.Errorf("decoding payload: %w", err)
	}
	return &e, nil
}

// Scoped returns a core.DeadLetterer view of the store for one shard:
// local pipeline indices are offset by the shard's start, and entries are
// stamped with the recording worker and fencing token.
func (s *DeadLetterStore) Scoped(base int, worker string, token uint64) core.DeadLetterer {
	return &scopedDeadLetters{store: s, base: base, worker: worker, token: token}
}

type scopedDeadLetters struct {
	store  *DeadLetterStore
	base   int
	worker string
	token  uint64
}

func (s *scopedDeadLetters) Lookup(index int, id netsim.BlockID) (string, bool) {
	return s.store.Lookup(s.base+index, id)
}

func (s *scopedDeadLetters) Record(index int, id netsim.BlockID, cause error) error {
	return s.store.record(s.base+index, id, cause, s.worker, s.token)
}
