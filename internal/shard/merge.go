package shard

// Merge stitches a sharded run back into one WorldResult and audits it.
// The audit is the run's integrity gate: it proves the shard ranges tile
// the world, that every block index is covered exactly once (by a journal
// frame or a dead-letter entry, never both), that no fenced writer's late
// frame disagrees with the accepted outcome, and that every file read
// passed its CRC. A run whose audit is not Clean must not be trusted —
// diurnalscan exits 4 on it.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
)

// Audit is the cross-shard integrity report produced by Merge.
type Audit struct {
	// Shards and DoneShards count the partition and its completion
	// markers; IncompleteShards lists shards without one.
	Shards           int
	DoneShards       int
	IncompleteShards []int
	// Journals is how many per-token journals were read; Frames how many
	// intact block frames they held; Accepted how many outcomes survived
	// token-precedence dedup into the result.
	Journals int
	Frames   int
	Accepted int
	// DuplicateFrames counts frames rejected because an identical outcome
	// for the block was already accepted — the harmless shadow of a fenced
	// or crashed writer. Conflicts lists frames that *disagreed* with the
	// accepted outcome, which must never happen (analysis is
	// deterministic): each is an audit failure.
	DuplicateFrames int
	Conflicts       []string
	// ForeignJournals counts journals in the ledger whose run signature
	// does not match their shard's slice — an audit failure.
	ForeignJournals int
	// TornJournals counts journals with torn or corrupt tails. Torn tails
	// are expected debris from kill -9 and are not failures by themselves;
	// the lost frames simply had to be re-analyzed under a later token.
	TornJournals int
	// DeadLetters counts valid quarantine entries folded into the result;
	// DeadLetterFaults lists unreadable or checksum-failing entries, and
	// DeadLetterConflicts blocks that are both analyzed and quarantined —
	// both audit failures.
	DeadLetters         int
	DeadLetterFaults    []string
	DeadLetterConflicts []string
	// Gaps lists global block indices covered by neither a journal frame
	// nor a dead-letter entry. Non-empty means the run is not finished (or
	// lost data) — an audit failure.
	Gaps []int
	// PartitionFaults lists defects in the manifest's shard ranges
	// themselves (overlap, gap, out of bounds).
	PartitionFaults []string
}

// Clean reports whether the merged result can be trusted as equivalent to
// a single-process run. Incomplete shards and torn tails do not by
// themselves fail the audit — coverage is what matters, and Gaps catches
// real losses.
func (a *Audit) Clean() bool {
	return len(a.Conflicts) == 0 &&
		a.ForeignJournals == 0 &&
		len(a.DeadLetterFaults) == 0 &&
		len(a.DeadLetterConflicts) == 0 &&
		len(a.Gaps) == 0 &&
		len(a.PartitionFaults) == 0
}

// String renders the audit as a short human-readable summary.
func (a *Audit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shards %d (%d done), journals %d, frames %d (%d accepted, %d duplicate), dead letters %d",
		a.Shards, a.DoneShards, a.Journals, a.Frames, a.Accepted, a.DuplicateFrames, a.DeadLetters)
	if a.TornJournals > 0 {
		fmt.Fprintf(&b, ", %d torn journal(s)", a.TornJournals)
	}
	if a.Clean() {
		b.WriteString(" — audit clean")
		return b.String()
	}
	b.WriteString(" — AUDIT FAILED:")
	for _, c := range a.Conflicts {
		fmt.Fprintf(&b, "\n  conflict: %s", c)
	}
	if a.ForeignJournals > 0 {
		fmt.Fprintf(&b, "\n  %d foreign journal(s)", a.ForeignJournals)
	}
	for _, f := range a.DeadLetterFaults {
		fmt.Fprintf(&b, "\n  %s", f)
	}
	for _, c := range a.DeadLetterConflicts {
		fmt.Fprintf(&b, "\n  %s", c)
	}
	if len(a.Gaps) > 0 {
		fmt.Fprintf(&b, "\n  %d uncovered block(s), first at index %d", len(a.Gaps), a.Gaps[0])
	}
	for _, f := range a.PartitionFaults {
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return b.String()
}

// Merge reads every shard's journals and the dead-letter manifest and
// assembles the world result a single-process run would have produced,
// plus the integrity audit. The returned error covers only mechanical
// failures (unreadable ledger); data problems land in the audit instead,
// so a failed audit still returns the best-effort result for inspection.
func (l *Ledger) Merge(cfg core.Config, world []*dataset.WorldBlock) (*core.WorldResult, *Audit, error) {
	audit := &Audit{Shards: len(l.man.Shards)}
	if len(world) != l.man.Blocks {
		return nil, nil, fmt.Errorf("shard: world has %d blocks, ledger expects %d", len(world), l.man.Blocks)
	}
	l.auditPartition(audit)
	res := &core.WorldResult{
		Blocks: make([]core.BlockOutcome, len(world)),
		Report: &core.RunReport{},
	}
	accepted := make([]bool, len(world))
	for _, r := range l.man.Shards {
		if _, ok := l.done(r.Index); ok {
			audit.DoneShards++
		} else {
			audit.IncompleteShards = append(audit.IncompleteShards, r.Index)
		}
		sub := world[r.Start:r.End]
		wantSig := core.RunSignature(cfg, sub)
		journals, err := l.tokenFiles(r.Index, "ckpt")
		if err != nil {
			return nil, nil, err
		}
		// Ascending token order: an earlier (possibly fenced) token's frames
		// are accepted first, and later tokens' re-frames of the same block
		// — only possible if a fenced append raced the takeover's seed scan
		// — must be byte-identical to count as duplicates.
		for _, jf := range journals {
			sig, entries, torn, err := core.ReadCheckpoint(jf.Path)
			if err != nil {
				audit.Conflicts = append(audit.Conflicts, fmt.Sprintf("journal %s unreadable: %v", jf.Path, err))
				continue
			}
			audit.Journals++
			if torn > 0 {
				audit.TornJournals++
			}
			if len(entries) > 0 && !bytes.Equal(sig, wantSig) {
				audit.ForeignJournals++
				continue
			}
			for _, e := range entries {
				audit.Frames++
				if e.Index < 0 || e.Index >= r.End-r.Start {
					audit.Conflicts = append(audit.Conflicts,
						fmt.Sprintf("shard %d token %d: frame index %d outside range [0,%d)", r.Index, jf.Token, e.Index, r.End-r.Start))
					continue
				}
				g := r.Start + e.Index
				if world[g].ID != e.Outcome.ID {
					audit.Conflicts = append(audit.Conflicts,
						fmt.Sprintf("shard %d token %d: frame for block %d carries ID %s, world has %s", r.Index, jf.Token, g, e.Outcome.ID, world[g].ID))
					continue
				}
				if accepted[g] {
					if outcomesEqual(&res.Blocks[g], e.Outcome) {
						audit.DuplicateFrames++
					} else {
						audit.Conflicts = append(audit.Conflicts,
							fmt.Sprintf("shard %d token %d: block %d (%s) re-journaled with a different outcome", r.Index, jf.Token, g, e.Outcome.ID))
					}
					continue
				}
				res.Blocks[g] = *e.Outcome
				accepted[g] = true
				audit.Accepted++
			}
		}
	}
	// Fold in the quarantine manifest: dead-lettered blocks occupy their
	// world slot with no analysis and are reported exactly as a
	// single-process run reports them, so fingerprints line up.
	dlCovered := make([]bool, len(world))
	entries, faults := l.dead.Entries()
	for _, f := range faults {
		audit.DeadLetterFaults = append(audit.DeadLetterFaults, f.Error())
	}
	for _, e := range entries {
		if e.Index < 0 || e.Index >= len(world) {
			audit.DeadLetterFaults = append(audit.DeadLetterFaults,
				fmt.Sprintf("dead letter for block %d: index outside world of %d", e.Index, len(world)))
			continue
		}
		if world[e.Index].ID != e.ID {
			audit.DeadLetterFaults = append(audit.DeadLetterFaults,
				fmt.Sprintf("dead letter for block %d carries ID %s, world has %s", e.Index, e.ID, world[e.Index].ID))
			continue
		}
		if accepted[e.Index] {
			audit.DeadLetterConflicts = append(audit.DeadLetterConflicts,
				fmt.Sprintf("block %d (%s) is both analyzed and dead-lettered (%s)", e.Index, e.ID, e.Kind))
			continue
		}
		if dlCovered[e.Index] {
			// dlName makes this impossible for one (index, id); Entries
			// already rejects files whose name disagrees with their payload.
			audit.DeadLetterConflicts = append(audit.DeadLetterConflicts,
				fmt.Sprintf("block %d (%s) dead-lettered twice", e.Index, e.ID))
			continue
		}
		dlCovered[e.Index] = true
		audit.DeadLetters++
		res.Blocks[e.Index] = core.BlockOutcome{ID: e.ID, Place: world[e.Index].Place}
		res.Report.DeadLettered = append(res.Report.DeadLettered,
			core.BlockError{Index: e.Index, ID: e.ID, Err: fmt.Errorf("%s", e.Reason)})
	}
	for g := range world {
		if !accepted[g] && !dlCovered[g] {
			audit.Gaps = append(audit.Gaps, g)
		}
	}
	sort.Slice(res.Report.DeadLettered, func(i, j int) bool {
		return res.Report.DeadLettered[i].Index < res.Report.DeadLettered[j].Index
	})
	res.Reaggregate()
	return res, audit, nil
}

// auditPartition checks that the manifest's shard ranges tile [0, Blocks)
// exactly: ascending, contiguous, no overlap, full coverage.
func (l *Ledger) auditPartition(a *Audit) {
	next := 0
	for _, r := range l.man.Shards {
		if r.Start != next || r.End < r.Start {
			a.PartitionFaults = append(a.PartitionFaults,
				fmt.Sprintf("shard %d spans [%d,%d), expected to start at %d", r.Index, r.Start, r.End, next))
		}
		if r.End > next {
			next = r.End
		}
	}
	if next != l.man.Blocks {
		a.PartitionFaults = append(a.PartitionFaults,
			fmt.Sprintf("shard ranges cover %d of %d blocks", next, l.man.Blocks))
	}
}

// outcomesEqual compares two outcomes by their gob encoding — the same
// bytes the fingerprint hashes, so "equal here" means "indistinguishable
// downstream".
func outcomesEqual(a, b *core.BlockOutcome) bool {
	var ab, bb bytes.Buffer
	if err := gob.NewEncoder(&ab).Encode(a); err != nil {
		return false
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}
