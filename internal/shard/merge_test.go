package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// TestMergeReportsGaps: a ledger nobody has worked on merges to a result
// whose audit lists every block as uncovered.
func TestMergeReportsGaps(t *testing.T) {
	world := testWorld(t, 6, 11)
	cfg := testConfig()
	l, err := Create(filepath.Join(t.TempDir(), "ledger"), core.RunSignature(cfg, world), len(world), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, audit, err := l.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Clean() {
		t.Fatal("an untouched ledger must not audit clean")
	}
	if len(audit.Gaps) != len(world) {
		t.Fatalf("%d gaps, want %d", len(audit.Gaps), len(world))
	}
	if len(audit.IncompleteShards) != 2 {
		t.Fatalf("incomplete shards %v", audit.IncompleteShards)
	}
}

// TestMergeTokenPrecedence drives the duplicate/conflict distinction
// directly: a later token re-journaling identical outcomes is harmless
// duplication; a later token journaling *different* outcomes for accepted
// blocks is a conflict that fails the audit. Determinism makes the latter
// impossible in healthy operation, which is exactly why the audit must
// refuse to bless it.
func TestMergeTokenPrecedence(t *testing.T) {
	world := testWorld(t, 6, 12)
	cfg := testConfig()
	sig := core.RunSignature(cfg, world)
	engA := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}

	runJournal := func(l *Ledger, token uint64, eng *probe.Engine) {
		t.Helper()
		cp, err := core.OpenCheckpoint(l.journalPath(0, token))
		if err != nil {
			t.Fatal(err)
		}
		defer cp.Close()
		if _, err := (&core.Pipeline{Config: cfg, Engine: eng, Checkpoint: cp}).
			Run(context.Background(), world); err != nil {
			t.Fatal(err)
		}
	}

	// Identical re-journal: token 2 re-runs the same engine.
	l, err := Create(filepath.Join(t.TempDir(), "dup"), sig, len(world), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runJournal(l, 1, engA)
	runJournal(l, 2, engA)
	merged, audit, err := l.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean() {
		t.Fatalf("identical duplicates must not fail the audit:\n%s", audit)
	}
	if audit.DuplicateFrames != len(world) {
		t.Fatalf("%d duplicates, want %d", audit.DuplicateFrames, len(world))
	}
	if audit.Accepted != len(world) || len(merged.Blocks) != len(world) {
		t.Fatalf("accepted %d of %d", audit.Accepted, len(world))
	}

	// Conflicting re-journal: token 2 runs a different engine seed, so its
	// outcomes disagree with token 1's accepted frames. (The run signature
	// covers config and world, not the engine — exactly the hole a
	// conflicting write slips through, and the audit's job to catch.)
	l2, err := Create(filepath.Join(t.TempDir(), "conflict"), sig, len(world), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runJournal(l2, 1, engA)
	runJournal(l2, 2, &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 8})
	_, audit2, err := l2.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if audit2.Clean() {
		t.Fatal("conflicting frames must fail the audit")
	}
	if len(audit2.Conflicts) == 0 {
		t.Fatalf("no conflicts recorded:\n%s", audit2)
	}
}

// TestMergeForeignJournal: a journal bound to a different run signature is
// ignored for results and counted as a failure.
func TestMergeForeignJournal(t *testing.T) {
	world := testWorld(t, 4, 13)
	cfg := testConfig()
	l, err := Create(filepath.Join(t.TempDir(), "ledger"), core.RunSignature(cfg, world), len(world), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Journal the world under a *different* config (shifted analysis
	// window), then drop that journal into the ledger's shard-0 slot.
	foreign := cfg
	foreign.AnalysisEnd -= 86400
	cp, err := core.OpenCheckpoint(l.journalPath(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	if _, err := (&core.Pipeline{Config: foreign, Engine: eng, Checkpoint: cp}).
		Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	_, audit, err := l.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if audit.ForeignJournals != 1 {
		t.Fatalf("foreign journals %d, want 1", audit.ForeignJournals)
	}
	if audit.Clean() {
		t.Fatal("a foreign journal must fail the audit")
	}
}

// TestMergeDeadLetterFaults: a corrupted quarantine entry is surfaced in
// the audit without hiding the healthy entries — and a block that is both
// analyzed and dead-lettered is a conflict.
func TestMergeDeadLetterFaults(t *testing.T) {
	world := testWorld(t, 6, 14)
	cfg := testConfig()
	sig := core.RunSignature(cfg, world)
	l, err := Create(filepath.Join(t.TempDir(), "ledger"), sig, len(world), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A full healthy journal, plus a dead letter for an analyzed block and
	// a second entry corrupted on disk.
	cp, err := core.OpenCheckpoint(l.journalPath(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	if _, err := (&core.Pipeline{Config: cfg, Engine: eng, Checkpoint: cp}).
		Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if err := l.DeadLetters().Record(2, world[2].ID, errors.New("late give-up")); err != nil {
		t.Fatal(err)
	}
	if err := l.DeadLetters().Record(4, world[4].ID, errors.New("will be corrupted")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(l.DeadLetters().Dir(), dlName(4, world[4].ID))
	if err := os.WriteFile(path, []byte(`{"payload":{"index":4},"crc32c":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, audit, err := l.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Clean() {
		t.Fatal("dead-letter faults must fail the audit")
	}
	if len(audit.DeadLetterConflicts) != 1 {
		t.Fatalf("dead-letter conflicts: %v", audit.DeadLetterConflicts)
	}
	if len(audit.DeadLetterFaults) != 1 {
		t.Fatalf("dead-letter faults: %v", audit.DeadLetterFaults)
	}
	if len(audit.Gaps) != 0 {
		t.Fatalf("journal covered every block, but gaps: %v", audit.Gaps)
	}
}

// TestWorkerAllPoisonShard: a shard whose every responsive block is
// quarantined still completes — an all-dead-lettered shard is a valid
// terminal state, unlike an all-dead-lettered world.
func TestWorkerAllPoisonShard(t *testing.T) {
	world := testWorld(t, 8, 15)
	cfg := testConfig()
	sig := core.RunSignature(cfg, world)
	l, err := Create(filepath.Join(t.TempDir(), "ledger"), sig, len(world), 4,
		Options{TTL: 10 * time.Second, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Quarantine shard 0's entire range up front.
	r := l.man.Shards[0]
	for g := r.Start; g < r.End; g++ {
		if err := l.DeadLetters().Record(g, world[g].ID, errors.New("panic: poison")); err != nil {
			t.Fatal(err)
		}
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: 7}
	w := &Worker{ID: "w1", Ledger: l, Config: cfg, Engine: eng, World: world}
	rep, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CompletedShards) != 4 {
		t.Fatalf("completed %v, want all 4 shards", rep.CompletedShards)
	}
	_, audit, err := l.Merge(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Clean() {
		t.Fatalf("audit failed:\n%s", audit)
	}
	if audit.DeadLetters != r.End-r.Start {
		t.Fatalf("audit saw %d dead letters, want %d", audit.DeadLetters, r.End-r.Start)
	}
}
