package shard

// Ledger.Clean's governance rules: superseded leases and every lease of
// a done shard are reclaimed, the live shard's top lease and all
// checkpoint journals are never touched, and temp litter is removed only
// once it is older than the TTL (younger litter may be a claim still in
// flight).

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/health"
)

func TestLedgerClean(t *testing.T) {
	clk := health.NewFake()
	dir := filepath.Join(t.TempDir(), "ledger")
	opt := Options{TTL: time.Minute, Poll: time.Second, Clock: clk}
	l, err := Create(dir, []byte{0xcc}, 8, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := l.man.Shards[0], l.man.Shards[1]

	// Shard 0: claimed, finished. Its leases are pure history.
	c0, err := l.Acquire(context.Background(), "w0")
	if err != nil {
		t.Fatal(err)
	}
	if c0.Shard.Index != r0.Index {
		t.Fatalf("first claim took shard %d", c0.Shard.Index)
	}
	if err := c0.Done(DoneMarker{Analyzed: 4}); err != nil {
		t.Fatal(err)
	}

	// Shard 1: claimed, expired, taken over — a superseded lease under a
	// live top one, plus a journal the takeover must resume from.
	c1, err := l.tryClaim(r1, "w1")
	if err != nil || c1 == nil {
		t.Fatalf("claim shard 1: %v, %v", c1, err)
	}
	cp, err := core.OpenCheckpoint(c1.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(opt.TTL + time.Second)
	c2, err := l.tryClaim(r1, "w2")
	if err != nil || c2 == nil {
		t.Fatalf("takeover of shard 1: %v, %v", c2, err)
	}
	if c2.Token != c1.Token+1 {
		t.Fatalf("takeover token %d after %d", c2.Token, c1.Token)
	}

	// Litter: aged temp files are abandoned; young ones may belong to a
	// claim still in flight.
	aged := []string{".claim-w9-stale", "merge.tmp42"}
	for _, name := range aged {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Unix(1, 0)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	fresh := filepath.Join(dir, ".claim-w3-inflight")
	if err := os.WriteFile(fresh, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	now := clk.Now()
	if err := os.Chtimes(fresh, now, now); err != nil {
		t.Fatal(err)
	}

	removed, err := l.Clean()
	if err != nil {
		t.Fatal(err)
	}
	// Reclaimed: shard 0's lease (done), shard 1's superseded lease, and
	// the aged litter. That is exactly 2 + len(aged) names.
	if len(removed) != 2+len(aged) {
		t.Fatalf("Clean removed %v, want shard-0 lease, superseded shard-1 lease, and aged litter", removed)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("young temp litter was reclaimed: %v", err)
	}
	for _, name := range aged {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("aged litter %s survived: %v", name, err)
		}
	}
	// The live top lease still fences and renews; the journal survived.
	if err := c2.Check(); err != nil {
		t.Errorf("live lease broken by Clean: %v", err)
	}
	if err := c2.Renew(); err != nil {
		t.Errorf("live lease cannot renew after Clean: %v", err)
	}
	if _, err := os.Stat(c1.JournalPath()); err != nil {
		t.Errorf("checkpoint journal reclaimed by Clean: %v", err)
	}
	// Idempotent: a second pass finds nothing.
	removed, err = l.Clean()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Errorf("second Clean removed %v", removed)
	}
}
