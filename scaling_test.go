package diurnal

import (
	"context"
	"testing"
	"time"
)

// scalingRun times one end-to-end world run at the given worker count and
// returns its wall clock plus the change-sensitive count (a cheap
// determinism fingerprint).
func scalingRun(t *testing.T, workers int) (time.Duration, int) {
	t.Helper()
	start, end := Date(2020, 1, 1), Date(2020, 2, 26)
	w, err := NewWorld(WorldOptions{
		Blocks: 24, Seed: 1, Calendar: Calendar2020(), Start: start, End: end,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	rep, err := w.RunContext(context.Background(), DefaultConfig(start, end),
		RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return time.Since(t0), rep.ChangeSensitiveCount()
}

// TestScalingSmoke is the CI guard on the batched analysis scheduler: a
// 4-worker run must not regress more than 10% against a 1-worker run
// (min of 3 to shave scheduler noise), and both must agree on the
// result. On a single-core runner the two widths cost the same, so the
// bound catches scheduler overhead, admission deadlocks, and lock
// contention rather than demanding speedup; BenchmarkScalingWorkers
// measures the actual curve on real cores.
func TestScalingSmoke(t *testing.T) {
	minOver := func(workers, reps int) (time.Duration, int) {
		best, cs := scalingRun(t, workers)
		for i := 1; i < reps; i++ {
			d, c := scalingRun(t, workers)
			if c != cs {
				t.Fatalf("workers=%d: nondeterministic result (%d vs %d change-sensitive)", workers, c, cs)
			}
			if d < best {
				best = d
			}
		}
		return best, cs
	}
	serial, cs1 := minOver(1, 3)
	parallel, cs4 := minOver(4, 3)
	if cs1 != cs4 {
		t.Fatalf("1-worker and 4-worker runs disagree: %d vs %d change-sensitive blocks", cs1, cs4)
	}
	if limit := serial + serial/10; parallel > limit {
		t.Errorf("4-worker run regressed past 10%%: %v vs %v (1 worker)", parallel, serial)
	}
}
