package diurnal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/diurnalnet/diurnal/internal/experiments"
)

// One benchmark per paper table and figure, plus the ablations DESIGN.md
// calls out. Each iteration regenerates the artifact end-to-end at bench
// scale (world simulation, probing, reconstruction, classification, STL,
// CUSUM, aggregation); run with -benchtime=1x for a single regeneration.
// The printed experiment outputs live in EXPERIMENTS.md; cmd/experiments
// regenerates them at larger scale.

// benchOpts is the shared bench-scale knob. The world studies (Figures
// 8–10, 12–13) cache their pipeline run per (blocks, seed) within the
// process, so their benches measure the first full run and then the
// aggregation layers.
var benchOpts = experiments.Options{Blocks: 300, Seed: 1}

func benchmarkExperiment[T any](b *testing.B, fn func(experiments.Options) (T, error), opts experiments.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fn(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (block filtering across datasets).
func BenchmarkTable2(b *testing.B) {
	benchmarkExperiment(b, experiments.Table2, experiments.Options{Blocks: 120, Seed: 1})
}

// BenchmarkTable3 regenerates Table 3 (reconstruction vs survey truth).
func BenchmarkTable3(b *testing.B) {
	benchmarkExperiment(b, experiments.Table3, experiments.Options{Blocks: 100, Seed: 1})
}

// BenchmarkTable4 regenerates Table 4 (geographic coverage).
func BenchmarkTable4(b *testing.B) {
	benchmarkExperiment(b, experiments.Table4, experiments.Options{Blocks: 400, Seed: 1})
}

// BenchmarkTable5 regenerates Table 5 (sampled-block validation).
func BenchmarkTable5(b *testing.B) {
	benchmarkExperiment(b, experiments.Table5, benchOpts)
}

// BenchmarkLocationValidation regenerates the §3.7 UAE/Slovenia study.
func BenchmarkLocationValidation(b *testing.B) {
	benchmarkExperiment(b, experiments.LocationValidation, experiments.Options{Blocks: 1200, Seed: 1})
}

// BenchmarkFigure1 regenerates the running-example block analysis.
func BenchmarkFigure1(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure1, experiments.Options{})
}

// BenchmarkFigure2 regenerates the reconstruction walk-through.
func BenchmarkFigure2(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure2, experiments.Options{})
}

// BenchmarkFigure3 regenerates the scan-time CDF (1–4 observers).
func BenchmarkFigure3(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure3, experiments.Options{Blocks: 150, Seed: 1})
}

// BenchmarkFigure4 regenerates the easy/hard reconstruction comparison.
func BenchmarkFigure4(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure4, experiments.Options{})
}

// BenchmarkFigure5 regenerates the classification-failure heatmap.
func BenchmarkFigure5(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure5, experiments.Options{Blocks: 150, Seed: 1})
}

// BenchmarkFigure6 regenerates the congestive-loss / 1-loss-repair study.
func BenchmarkFigure6(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure6, experiments.Options{})
}

// BenchmarkFigure7 regenerates the change-sensitive world map summary.
func BenchmarkFigure7(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure7, experiments.Options{Blocks: 400, Seed: 1})
}

// BenchmarkFigure8 regenerates the continental 2020h1 trends.
func BenchmarkFigure8(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure8, benchOpts)
}

// BenchmarkFigure9 regenerates the China (Wuhan/Beijing/Shanghai) study.
func BenchmarkFigure9(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure9, benchOpts)
}

// BenchmarkFigure10 regenerates the New Delhi study.
func BenchmarkFigure10(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure10, benchOpts)
}

// BenchmarkFigure11 regenerates the Appendix B.1 representative blocks.
func BenchmarkFigure11(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure11, experiments.Options{})
}

// BenchmarkFigure12 regenerates the Beijing 2023q1 control.
func BenchmarkFigure12(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure12, benchOpts)
}

// BenchmarkFigure13 regenerates the New Delhi 2023q1 null control.
func BenchmarkFigure13(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure13, benchOpts)
}

// BenchmarkFigure14 regenerates the gridcell-threshold sensitivity curves.
func BenchmarkFigure14(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure14, experiments.Options{Blocks: 400, Seed: 1})
}

// BenchmarkFigure15 regenerates the VPN-migration case study.
func BenchmarkFigure15(b *testing.B) {
	benchmarkExperiment(b, experiments.Figure15, experiments.Options{})
}

// BenchmarkFBSModel regenerates the §3.2.3 full-block-scan predictor.
func BenchmarkFBSModel(b *testing.B) {
	benchmarkExperiment(b, experiments.FBSModel, experiments.Options{Blocks: 200, Seed: 1})
}

// BenchmarkExtraProbing regenerates the §2.8 additional-observations study.
func BenchmarkExtraProbing(b *testing.B) {
	benchmarkExperiment(b, experiments.ExtraProbing, experiments.Options{Blocks: 120, Seed: 1})
}

// BenchmarkObserverHealth regenerates the §2.7 observer cross-check.
func BenchmarkObserverHealth(b *testing.B) {
	benchmarkExperiment(b, experiments.ObserverHealth, experiments.Options{Blocks: 100, Seed: 1})
}

// BenchmarkProfileSeparation regenerates the §2.6 future-work profiling.
func BenchmarkProfileSeparation(b *testing.B) {
	benchmarkExperiment(b, experiments.ProfileSeparation, experiments.Options{Blocks: 150, Seed: 1})
}

// BenchmarkAblationSTLvsNaive regenerates the §2.5 decomposition ablation.
func BenchmarkAblationSTLvsNaive(b *testing.B) {
	benchmarkExperiment(b, experiments.AblationSTLvsNaive, experiments.Options{Blocks: 8, Seed: 1})
}

// BenchmarkAblationSwing regenerates the §2.4 swing-threshold sweep.
func BenchmarkAblationSwing(b *testing.B) {
	benchmarkExperiment(b, experiments.AblationSwing, experiments.Options{Blocks: 150, Seed: 1})
}

// BenchmarkAblationLossRepair regenerates the §3.3 loss sweep.
func BenchmarkAblationLossRepair(b *testing.B) {
	benchmarkExperiment(b, experiments.AblationLossRepair, experiments.Options{})
}

// BenchmarkAblationPersistence regenerates the §2.4 persistence-rule sweep.
func BenchmarkAblationPersistence(b *testing.B) {
	benchmarkExperiment(b, experiments.AblationPersistence, experiments.Options{Blocks: 100, Seed: 1})
}

// BenchmarkAblationOutageFilter regenerates the §2.6 filter comparison.
func BenchmarkAblationOutageFilter(b *testing.B) {
	benchmarkExperiment(b, experiments.AblationOutageFilter, experiments.Options{Blocks: 10, Seed: 1})
}

// BenchmarkEndToEndWorld measures the full public-API pipeline over a
// small Covid-era world: build, probe, reconstruct, classify, detect,
// aggregate.
func BenchmarkEndToEndWorld(b *testing.B) {
	start, end := Date(2020, 1, 1), Date(2020, 2, 26)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(WorldOptions{
			Blocks: 60, Seed: 1, Calendar: Calendar2020(), Start: start, End: end,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Run(DefaultConfig(start, end)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingWorkers measures the end-to-end world run at 1 through
// 32 analysis workers — the worker-scaling curve for the batched analysis
// engine. Results are identical at every width (the batch scheduler is
// bit-deterministic); only wall clock changes. On hosts with fewer cores
// than workers the curve flattens at the core count.
func BenchmarkScalingWorkers(b *testing.B) {
	start, end := Date(2020, 1, 1), Date(2020, 2, 26)
	for _, workers := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := NewWorld(WorldOptions{
					Blocks: 60, Seed: 1, Calendar: Calendar2020(), Start: start, End: end,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.RunContext(context.Background(), DefaultConfig(start, end),
					RunOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndWorldCheckpointed is BenchmarkEndToEndWorld with a
// checkpoint journal attached (a fresh file each iteration, so every block
// is journaled and none resumed). Comparing the two quantifies the
// crash-safety overhead; the journaling budget is under 5% of the run.
func BenchmarkEndToEndWorldCheckpointed(b *testing.B) {
	start, end := Date(2020, 1, 1), Date(2020, 2, 26)
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(WorldOptions{
			Blocks: 60, Seed: 1, Calendar: Calendar2020(), Start: start, End: end,
		})
		if err != nil {
			b.Fatal(err)
		}
		journal := filepath.Join(dir, "bench.ckpt")
		_, err = w.RunContext(context.Background(), DefaultConfig(start, end),
			RunOptions{CheckpointPath: journal})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := os.Remove(journal); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
